module Metric = Giantsan_telemetry.Metric

type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable poison_segments : int;
  mutable instr_checks : int;
  mutable region_checks : int;
  mutable fast_checks : int;
  mutable slow_checks : int;
  mutable word_checks : int;
  mutable cache_hits : int;
  mutable cache_updates : int;
  mutable underflow_checks : int;
  mutable bounds_checks : int;
  mutable auth_checks : int;
  mutable errors : int;
}

(* The single declarative field list: reset/add/to_assoc/pp/total_checks
   are all derived from it, so none of them can drift from the record. *)
let spec : t Metric.spec =
  [
    Metric.field "mallocs" (fun t -> t.mallocs) (fun t v -> t.mallocs <- v);
    Metric.field "frees" (fun t -> t.frees) (fun t v -> t.frees <- v);
    Metric.field "poison_segments"
      (fun t -> t.poison_segments)
      (fun t v -> t.poison_segments <- v);
    Metric.field "instr_checks"
      (fun t -> t.instr_checks)
      (fun t v -> t.instr_checks <- v);
    Metric.field "region_checks"
      (fun t -> t.region_checks)
      (fun t v -> t.region_checks <- v);
    Metric.field "fast_checks"
      (fun t -> t.fast_checks)
      (fun t v -> t.fast_checks <- v);
    Metric.field "slow_checks"
      (fun t -> t.slow_checks)
      (fun t v -> t.slow_checks <- v);
    Metric.field "word_checks"
      (fun t -> t.word_checks)
      (fun t v -> t.word_checks <- v);
    Metric.field "cache_hits"
      (fun t -> t.cache_hits)
      (fun t v -> t.cache_hits <- v);
    Metric.field "cache_updates"
      (fun t -> t.cache_updates)
      (fun t v -> t.cache_updates <- v);
    Metric.field "underflow_checks"
      (fun t -> t.underflow_checks)
      (fun t v -> t.underflow_checks <- v);
    Metric.field "bounds_checks"
      (fun t -> t.bounds_checks)
      (fun t v -> t.bounds_checks <- v);
    Metric.field "auth_checks"
      (fun t -> t.auth_checks)
      (fun t v -> t.auth_checks <- v);
    Metric.field "errors" (fun t -> t.errors) (fun t v -> t.errors <- v);
  ]

let create () =
  {
    mallocs = 0;
    frees = 0;
    poison_segments = 0;
    instr_checks = 0;
    region_checks = 0;
    fast_checks = 0;
    slow_checks = 0;
    word_checks = 0;
    cache_hits = 0;
    cache_updates = 0;
    underflow_checks = 0;
    bounds_checks = 0;
    auth_checks = 0;
    errors = 0;
  }

let reset t = Metric.reset spec t
let add acc x = Metric.add spec acc x

(* Check executions regardless of flavour. [fast_checks] and [slow_checks]
   are deliberately absent: they partition [region_checks] (every region
   check is settled by exactly one of the two paths), so adding them would
   double-count — see the qcheck partition invariant in test_counters.ml.
   [word_checks] is absent for the same reason: it counts the subset of
   [fast_checks] settled by the one-word kernel, not new check events.
   [auth_checks] (PAC pointer authentications) is a check event of its own
   — the tagged-pointer backend performs no instruction or region checks,
   only authentications — so it joins the sum. *)
let total_checks_fields =
  [ "instr_checks"; "region_checks"; "cache_hits"; "cache_updates";
    "bounds_checks"; "auth_checks" ]

let total_checks t = Metric.sum spec ~names:total_checks_fields t
let to_assoc t = Metric.to_assoc spec t
let pp ppf t = Metric.pp spec ppf t
