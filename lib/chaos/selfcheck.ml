module Memsim = Giantsan_memsim
module Memobj = Memsim.Memobj
module Shadow_mem = Giantsan_shadow.Shadow_mem
module State_code = Giantsan_core.State_code

type mismatch_class = Overclaim | Underclaim | Drift

let class_name = function
  | Overclaim -> "overclaim"
  | Underclaim -> "underclaim"
  | Drift -> "drift"

type mismatch = {
  seg : int;
  expected : int;
  actual : int;
  cls : mismatch_class;
}

(* The GiantSan shadow is a pure function of the heap's ground truth: for
   every segment, the owning object's kind, status and geometry determine
   the one code the poisoning pass must have written. The per-object code
   itself lives in the executable specification ([Model.code_in_object]),
   so this audit and the lockstep refinement harness can never disagree
   about what "correct" means; this module only supplies the oracle-side
   ownership lookup. Any divergence — injected or organic — is a
   corruption, because no legal operation sequence can produce it. *)
let expected_code heap seg =
  let oracle = Memsim.Heap.oracle heap in
  match Memsim.Oracle.owner oracle (seg * 8) with
  | None -> State_code.unallocated
  | Some obj -> (
    match obj.Memobj.status with
    | Memobj.Recycled ->
      (* recycled blocks have their owner cleared; a stale owner here would
         itself be an oracle bug, surfaced as a mismatch *)
      State_code.unallocated
    | (Memobj.Live | Memobj.Quarantined) as st ->
      Giantsan_spec.Model.code_in_object
        ~live:(st = Memobj.Live)
        ~kind:obj.Memobj.kind ~base:obj.Memobj.base ~size:obj.Memobj.size seg)

let classify ~expected ~actual =
  let ea = State_code.addressable_in_segment expected
  and aa = State_code.addressable_in_segment actual in
  let ec = State_code.covered_bytes expected
  and ac = State_code.covered_bytes actual in
  if aa > ea || ac > ec then Overclaim
  else if aa < ea || ac < ec then Underclaim
  else Drift

let run ~heap ~shadow =
  let n = Shadow_mem.segments shadow in
  let out = ref [] in
  (* word-wide walk, high to low so the mismatch list comes out ascending.
     peek_word, not load_word: the self-check is an out-of-band audit and
     must not perturb the event-count-derived cost model. *)
  let word_lo = ref (((n - 1) / 8) * 8) in
  while !word_lo >= 0 do
    let w = Shadow_mem.peek_word shadow !word_lo in
    let lanes = min 8 (n - !word_lo) in
    for k = lanes - 1 downto 0 do
      let seg = !word_lo + k in
      let expected = expected_code heap seg in
      let actual = Shadow_mem.word_byte w k in
      if actual <> expected then
        out :=
          { seg; expected; actual; cls = classify ~expected ~actual } :: !out
    done;
    word_lo := !word_lo - 8
  done;
  !out

let mismatch_to_string m =
  Printf.sprintf "seg %d: expected %s, found %s (%s)" m.seg
    (State_code.describe m.expected)
    (State_code.describe m.actual)
    (class_name m.cls)
