module Rng = Giantsan_util.Rng

(* Plane 1: shadow corruption. Applied to the live GiantSan shadow after a
   scheduled step of the victim scenario. [pick] indexes into the
   deterministic candidate list the engine builds at injection time. *)
type shadow_fault =
  | Bit_flip of { pick : int; mask : int }  (* xor an owned segment's code *)
  | Stale_free of { pick : int }  (* a live segment marked freed *)
  | Overclaim_code of { pick : int }  (* a non-addressable segment marked good *)
  | Misfold of { degree : int }  (* arm Folding.Overstate_last for the run *)
  | Journal_drop of { pick : int }
    (* fuzz-mode plane: steal a dirty-journal entry between snapshot and
       restore, so the restore under-repairs the shadow *)

(* Plane 2: allocator pressure. *)
type alloc_fault =
  | Oom_at of int  (* Heap.chaos_oom_after: the n-th malloc raises *)
  | Tiny_arena of int  (* run the workload on an n-byte arena *)
  | Quarantine_thrash of { budget : int; churn : int }
  | Fragmentation of { allocs : int; size : int }

(* Plane 3: execution faults in the domain pool. *)
type exec_fault =
  | Task_raise of { at : int; tasks : int; jobs : int }
  | Pathological_shard of { heavy : int; repeat : int; jobs : int }

(* Plane 4: input faults against the corpus/NDJSON parsers. *)
type input_fault =
  | Corrupt_corpus of { seed : int }
  | Corrupt_ndjson of { seed : int }

type plane = Shadow | Alloc | Exec | Input

let plane_name = function
  | Shadow -> "shadow"
  | Alloc -> "alloc"
  | Exec -> "exec"
  | Input -> "input"

type spec =
  | F_shadow of shadow_fault
  | F_alloc of alloc_fault
  | F_exec of exec_fault
  | F_input of input_fault

type cell = {
  cell_id : string;
  plane : plane;
  spec : spec;
  scenario_seed : int;  (* victim-workload seed, where applicable *)
  inject_after : int;  (* steps executed before the fault lands *)
}

let spec_name = function
  | F_shadow (Bit_flip { mask; _ }) -> Printf.sprintf "bit-flip x%02x" mask
  | F_shadow (Stale_free _) -> "stale-free-code"
  | F_shadow (Overclaim_code _) -> "overclaim-code"
  | F_shadow (Misfold { degree }) -> Printf.sprintf "misfold d=%d" degree
  | F_shadow (Journal_drop { pick }) -> Printf.sprintf "journal-drop p=%d" pick
  | F_alloc (Oom_at n) -> Printf.sprintf "oom@malloc %d" n
  | F_alloc (Tiny_arena n) -> Printf.sprintf "arena=%dB" n
  | F_alloc (Quarantine_thrash { budget; churn }) ->
    Printf.sprintf "thrash q=%dB x%d" budget churn
  | F_alloc (Fragmentation { allocs; size }) ->
    Printf.sprintf "fragment %dx%dB" allocs size
  | F_exec (Task_raise { at; tasks; jobs }) ->
    Printf.sprintf "raise@%d/%d j=%d" at tasks jobs
  | F_exec (Pathological_shard { heavy; repeat; jobs }) ->
    Printf.sprintf "skew@%d x%d j=%d" heavy repeat jobs
  | F_input (Corrupt_corpus { seed }) -> Printf.sprintf "corpus s=%d" seed
  | F_input (Corrupt_ndjson { seed }) -> Printf.sprintf "ndjson s=%d" seed

(* The matrix is generated, not hand-listed: every numeric knob (picks,
   masks, degrees, injection step, victim seeds) comes from one splitmix64
   stream, so a (seed) always yields the identical fault schedule — the
   same property the fuzzer's (seed, runs) pair has. *)
let matrix ~seed =
  let rng = Rng.create seed in
  let cells = ref [] in
  let push plane spec =
    let scenario_seed = Rng.int rng 1_000_000 in
    let inject_after = 2 + Rng.int rng 6 in
    let cell_id =
      Printf.sprintf "%s-%02d" (plane_name plane) (List.length !cells)
    in
    cells := { cell_id; plane; spec; scenario_seed; inject_after } :: !cells
  in
  (* shadow plane: one cell per corruption kind, randomized parameters *)
  push Shadow (F_shadow (Bit_flip { pick = Rng.int rng 64; mask = 1 + Rng.int rng 255 }));
  push Shadow (F_shadow (Stale_free { pick = Rng.int rng 64 }));
  push Shadow (F_shadow (Overclaim_code { pick = Rng.int rng 64 }));
  push Shadow (F_shadow (Misfold { degree = 1 + Rng.int rng 3 }));
  push Shadow (F_shadow (Journal_drop { pick = Rng.int rng 64 }));
  (* allocator pressure *)
  push Alloc (F_alloc (Oom_at (1 + Rng.int rng 6)));
  push Alloc (F_alloc (Tiny_arena (2048 + (8 * Rng.int rng 64))));
  push Alloc
    (F_alloc (Quarantine_thrash { budget = 64 + (8 * Rng.int rng 16);
                                  churn = 24 + Rng.int rng 24 }));
  push Alloc
    (F_alloc (Fragmentation { allocs = 12 + Rng.int rng 8;
                              size = 160 + (8 * Rng.int rng 16) }));
  (* execution faults *)
  push Exec (F_exec (Task_raise { at = 3 + Rng.int rng 8; tasks = 16; jobs = 2 }));
  push Exec (F_exec (Task_raise { at = 3 + Rng.int rng 8; tasks = 16; jobs = 4 }));
  push Exec
    (F_exec (Pathological_shard { heavy = Rng.int rng 8; repeat = 40; jobs = 2 }));
  (* input faults: two seeds per parser so more than one mutation kind runs *)
  push Input (F_input (Corrupt_corpus { seed = Rng.int rng 1_000_000 }));
  push Input (F_input (Corrupt_corpus { seed = Rng.int rng 1_000_000 }));
  push Input (F_input (Corrupt_ndjson { seed = Rng.int rng 1_000_000 }));
  push Input (F_input (Corrupt_ndjson { seed = Rng.int rng 1_000_000 }));
  List.rev !cells
