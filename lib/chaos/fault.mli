(** Fault-plan types and the seeded fault matrix.

    Four planes, one per trust boundary the runtime degrades across:
    shadow-byte corruption, allocator pressure, execution faults in the
    domain pool, and corrupt on-disk inputs. A plan never carries wall
    clock or ambient randomness — every knob is drawn from one splitmix64
    stream, so [matrix ~seed] is a pure function and the whole chaos run
    reproduces byte-for-byte. *)

type shadow_fault =
  | Bit_flip of { pick : int; mask : int }
      (** xor a shadow byte with [mask] (1..255, so the byte must change) *)
  | Stale_free of { pick : int }
      (** overwrite a live (folded/partial) segment with the freed code *)
  | Overclaim_code of { pick : int }
      (** overwrite a guarded (error-code) segment with the good code —
          the dangerous direction: real violations could be missed *)
  | Misfold of { degree : int }
      (** arm {!Giantsan_core.Folding.Overstate_last} so subsequent
          poisoning overstates the last segment's degree *)
  | Journal_drop of { pick : int }
      (** the fuzz-mode restore plane: snapshot at the injection point,
          run the scenario tail, then steal the [pick]-th dirty-journal
          entry ({!Giantsan_shadow.Shadow_mem.chaos_drop_journal}) before
          restoring — the under-repaired shadow must be flagged by the
          shadow-vs-oracle selfcheck *)

type alloc_fault =
  | Oom_at of int  (** {!Giantsan_memsim.Heap.chaos_oom_after} countdown *)
  | Tiny_arena of int  (** churn a workload inside an [n]-byte arena *)
  | Quarantine_thrash of { budget : int; churn : int }
  | Fragmentation of { allocs : int; size : int }

type exec_fault =
  | Task_raise of { at : int; tasks : int; jobs : int }
  | Pathological_shard of { heavy : int; repeat : int; jobs : int }

type input_fault =
  | Corrupt_corpus of { seed : int }
  | Corrupt_ndjson of { seed : int }

type plane = Shadow | Alloc | Exec | Input

val plane_name : plane -> string

type spec =
  | F_shadow of shadow_fault
  | F_alloc of alloc_fault
  | F_exec of exec_fault
  | F_input of input_fault

type cell = {
  cell_id : string;
  plane : plane;
  spec : spec;
  scenario_seed : int;  (** victim-workload seed, where applicable *)
  inject_after : int;  (** steps executed before the fault lands *)
}

val spec_name : spec -> string

val matrix : seed:int -> cell list
(** The full fault schedule for one chaos round: every plane represented,
    ~15 cells, all parameters drawn deterministically from [seed]. *)
