(** Shadow-vs-oracle self-check for the GiantSan encoding.

    The shadow a correct GiantSan runtime maintains is a {e pure function}
    of the heap's ground truth: every segment's code is determined by the
    owning object's kind, status and geometry (redzones, folded good run
    with degrees [degree_at (count - j)], trailing partial segment, freed
    codes over quarantined payloads, unallocated elsewhere — §4.1). This
    module recomputes that function from the oracle and compares it
    byte-for-byte against the live shadow. On a healthy run the result is
    empty after {e every} operation; any divergence is a corruption that no
    legal operation sequence can produce, which is what makes the chaos
    engine's corruption-always-flagged contract checkable. *)

type mismatch_class =
  | Overclaim
      (** the shadow claims more addressable/covered bytes than the truth:
          the dangerous direction — real violations can be missed *)
  | Underclaim
      (** the shadow claims fewer: false positives, availability loss *)
  | Drift
      (** same claims, wrong category (e.g. freed where redzone belongs) *)

val class_name : mismatch_class -> string

type mismatch = {
  seg : int;
  expected : int;
  actual : int;
  cls : mismatch_class;
}

val expected_code : Giantsan_memsim.Heap.t -> int -> int
(** The one code segment [seg] must carry given the heap's current ground
    truth. *)

val run :
  heap:Giantsan_memsim.Heap.t ->
  shadow:Giantsan_shadow.Shadow_mem.t ->
  mismatch list
(** Full-arena byte-exact audit, in segment order. Reads the shadow with
    uncounted [peek]s so the audit never perturbs the event-count-derived
    cost model. Empty = shadow provably consistent with ground truth. *)

val mismatch_to_string : mismatch -> string
