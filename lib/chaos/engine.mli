(** The chaos engine: executes a {!Fault.matrix} and checks each plane's
    degradation contract.

    Every cell builds a private sanitizer/heap/shadow, so cells share no
    mutable state and the matrix parallelises over {!Giantsan_parallel.Pool}
    without changing its output: results come back in cell order, every
    cell's computation is scheduling-independent, and the only global
    resource (the telemetry trace sink, needed by the NDJSON input cells) is
    consumed serially before the parallel phase. For a fixed seed the
    rendered report is byte-identical across runs and across [--jobs].

    The contract, per plane:
    - {e shadow}: injected corruption must be flagged by the
      {!Selfcheck} audit — never silently absorbed into a verdict;
    - {e alloc}: exhaustion must end in graceful degradation (pressure
      flush, quarantine bypass) or a clean [Out_of_memory] diagnostic, with
      the shadow audit still clean and temporal detection preserved;
    - {e exec}: a raising task must poison the pool deterministically
      (lowest-index exception), and skewed shards must not change results;
    - {e input}: corrupt corpus/NDJSON text must be rejected by the parser
      or survive as still-consistent input — never accepted with a lie.

    Any cell that breaches its contract is a [Silent] outcome; one or more
    of those fails the whole run. *)

type outcome =
  | Detected  (** the fault was flagged (audit mismatch, parse rejection) *)
  | Degraded
      (** forward progress was lost gracefully: diagnostic raised,
          detection and shadow consistency preserved *)
  | Tolerated  (** the fault landed but had nothing to break *)
  | Silent  (** contract violation: the fault went unnoticed *)

val outcome_name : outcome -> string

type stats = {
  mutable faults_injected : int;
  mutable faults_detected : int;
  mutable runs_degraded : int;
  mutable faults_tolerated : int;
  mutable silent_corruptions : int;
}

val stats_spec : stats Giantsan_telemetry.Metric.spec
val fresh_stats : unit -> stats

type result_row = {
  r_cell : Fault.cell;
  r_outcome : outcome;
  r_detail : string;
}

val run_round : seed:int -> jobs:int -> result_row list
(** Execute one full matrix; rows come back in cell order. *)

val tally : stats -> result_row list -> unit

val run : ?soak:int -> seed:int -> jobs:int -> unit -> string * bool
(** [run ~seed ~jobs ()] renders the full report (fault table, counters,
    contract line). [soak] > 1 repeats the matrix over derived seeds and
    appends an aggregate. Returns [(report, contract_held)]. *)
