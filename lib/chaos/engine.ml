module Rng = Giantsan_util.Rng
module Table = Giantsan_util.Table
module Memsim = Giantsan_memsim
module Heap = Memsim.Heap
module Shadow_mem = Giantsan_shadow.Shadow_mem
module State_code = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module Gs_runtime = Giantsan_core.Gs_runtime
module San = Giantsan_sanitizer.Sanitizer
module Report = Giantsan_sanitizer.Report
module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Pool = Giantsan_parallel.Pool
module Corpus = Giantsan_fuzz.Corpus
module Exec = Giantsan_fuzz.Exec
module Corpus_tools = Giantsan_report.Corpus_tools
module Export = Giantsan_telemetry.Export
module Metric = Giantsan_telemetry.Metric

type outcome = Detected | Degraded | Tolerated | Silent

let outcome_name = function
  | Detected -> "detected"
  | Degraded -> "degraded"
  | Tolerated -> "tolerated"
  | Silent -> "SILENT"

type stats = {
  mutable faults_injected : int;
  mutable faults_detected : int;
  mutable runs_degraded : int;
  mutable faults_tolerated : int;
  mutable silent_corruptions : int;
}

let stats_spec : stats Metric.spec =
  [
    Metric.field "faults_injected"
      (fun s -> s.faults_injected)
      (fun s v -> s.faults_injected <- v);
    Metric.field "faults_detected"
      (fun s -> s.faults_detected)
      (fun s v -> s.faults_detected <- v);
    Metric.field "runs_degraded"
      (fun s -> s.runs_degraded)
      (fun s v -> s.runs_degraded <- v);
    Metric.field "faults_tolerated"
      (fun s -> s.faults_tolerated)
      (fun s v -> s.faults_tolerated <- v);
    Metric.field "silent_corruptions"
      (fun s -> s.silent_corruptions)
      (fun s v -> s.silent_corruptions <- v);
  ]

let fresh_stats () =
  {
    faults_injected = 0;
    faults_detected = 0;
    runs_degraded = 0;
    faults_tolerated = 0;
    silent_corruptions = 0;
  }

type result_row = {
  r_cell : Fault.cell;
  r_outcome : outcome;
  r_detail : string;
}

exception Chaos_task of int

(* Cell arena: every cell builds a private sanitizer, so cells share no
   mutable state and Pool.map over them is race-free by construction. *)
let cell_config =
  { Heap.arena_size = 32 * 1024; redzone = 16; quarantine_budget = 16 * 1024 }

(* One step of the Scenario DSL against a live sanitizer, mirroring
   Scenario.run_reports but resumable: the chaos engine needs to stop
   mid-scenario, corrupt the shadow, and keep going with a self-check
   after every subsequent step. *)
let exec_step (san : San.t) slots step =
  let reports = ref [] in
  let note = function None -> () | Some r -> reports := r :: !reports in
  let base slot =
    match Hashtbl.find_opt slots slot with
    | Some b -> b
    | None -> failwith "chaos: use of unallocated slot"
  in
  (match step with
  | Scenario.Alloc { slot; size; kind } ->
    let obj = san.San.malloc ~kind size in
    Hashtbl.replace slots slot obj.Memsim.Memobj.base
  | Scenario.Free_slot slot -> note (san.San.free (base slot))
  | Scenario.Free_at { slot; delta } -> note (san.San.free (base slot + delta))
  | Scenario.Access { slot; off; width } ->
    let b = base slot in
    note (san.San.access ~base:b ~addr:(b + off) ~width)
  | Scenario.Access_loop { slot; from_; to_; step; width } ->
    let b = base slot in
    let cache = san.San.new_cache ~base:b in
    List.iter
      (fun off -> note (san.San.cached_access cache ~off ~width))
      (Scenario.loop_offsets ~from_ ~to_ ~step);
    note (san.San.flush_cache cache)
  | Scenario.Region { slot; off; len } ->
    let b = base slot in
    if len > 0 then note (san.San.check_region ~lo:(b + off) ~hi:(b + off + len))
  | Scenario.Access_null { off; width } ->
    note (san.San.access ~base:0 ~addr:off ~width));
  List.rev !reports

let split_at k l =
  let rec go k acc = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (k - 1) (x :: acc) rest
  in
  go k [] l

let candidates shadow pred =
  let n = Shadow_mem.segments shadow in
  let out = ref [] in
  for seg = n - 1 downto 0 do
    if pred (Shadow_mem.peek shadow seg) then out := seg :: !out
  done;
  Array.of_list !out

let first_mismatch heap shadow =
  match Selfcheck.run ~heap ~shadow with
  | [] -> None
  | m :: _ as all -> Some (List.length all, m)

(* ---------- plane 1: shadow corruption ---------- *)

(* Run the scenario up to the injection point, corrupt the shadow (or arm
   the misfold plan), then keep executing with a shadow-vs-oracle audit
   after every remaining step. The contract: the audit flags the
   corruption; it is never silently absorbed into a verdict. *)
let run_shadow_cell (cell : Fault.cell) fault =
  let sc = Difftest.gen_clean ~seed:cell.Fault.scenario_seed in
  let san, shadow = Gs_runtime.create_exposed cell_config in
  let heap = san.San.heap in
  let slots = Hashtbl.create 4 in
  let pre, post = split_at cell.Fault.inject_after sc.Scenario.sc_steps in
  List.iter (fun s -> ignore (exec_step san slots s)) pre;
  (match first_mismatch heap shadow with
  | Some (_, m) ->
    failwith ("chaos: shadow inconsistent before injection: "
              ^ Selfcheck.mismatch_to_string m)
  | None -> ());
  let finish_clean () =
    List.iter (fun s -> ignore (exec_step san slots s)) post
  in
  let audit_post fault_plan =
    (* execute the tail with the audit after every step; first flag wins *)
    let flagged = ref None in
    Folding.with_fault fault_plan (fun () ->
        List.iter
          (fun s ->
            ignore (exec_step san slots s);
            if !flagged = None then flagged := first_mismatch heap shadow)
          post);
    !flagged
  in
  match fault with
  | Fault.Bit_flip { pick; mask } ->
    let seg = pick mod Shadow_mem.segments shadow in
    let old = Shadow_mem.peek shadow seg in
    Shadow_mem.poke shadow seg (old lxor (mask land 0xff));
    (match first_mismatch heap shadow with
    | Some (n, m) ->
      finish_clean ();
      (Detected,
       Printf.sprintf "%d mismatch(es); %s" n (Selfcheck.mismatch_to_string m))
    | None -> (Silent, Printf.sprintf "bit flip at seg %d unflagged" seg))
  | Fault.Stale_free { pick } -> (
    let cands = candidates shadow (fun c -> not (State_code.is_error c)) in
    if Array.length cands = 0 then
      (Tolerated, "no live segment to corrupt at injection point")
    else
      let seg = cands.(pick mod Array.length cands) in
      Shadow_mem.poke shadow seg State_code.freed;
      match first_mismatch heap shadow with
      | Some (n, m) ->
        finish_clean ();
        (Detected,
         Printf.sprintf "%d mismatch(es); %s" n (Selfcheck.mismatch_to_string m))
      | None -> (Silent, Printf.sprintf "stale free code at seg %d unflagged" seg))
  | Fault.Overclaim_code { pick } -> (
    let cands = candidates shadow State_code.is_error in
    if Array.length cands = 0 then
      (Tolerated, "no guarded segment to overclaim at injection point")
    else
      let seg = cands.(pick mod Array.length cands) in
      Shadow_mem.poke shadow seg State_code.good;
      match first_mismatch heap shadow with
      | Some (n, m) ->
        finish_clean ();
        (Detected,
         Printf.sprintf "%d mismatch(es); %s" n (Selfcheck.mismatch_to_string m))
      | None -> (Silent, Printf.sprintf "overclaim at seg %d unflagged" seg))
  | Fault.Misfold { degree } -> (
    let exercised =
      List.exists
        (function Scenario.Alloc { size; _ } -> size >= 8 | _ -> false)
        post
    in
    match audit_post (Some (Folding.Overstate_last degree)) with
    | Some (n, m) ->
      (Detected,
       Printf.sprintf "%d mismatch(es); %s" n (Selfcheck.mismatch_to_string m))
    | None ->
      if exercised then (Silent, "misfolded poisoning unflagged")
      else (Tolerated, "no foldable allocation after injection"))
  | Fault.Journal_drop { pick } -> (
    (* the fuzz-mode restore path: snapshot at the injection point, run
       the scenario tail (every store journals its dirty range), steal one
       journal entry, restore. The heap and oracle rewind fully but the
       stolen range keeps its post-snapshot shadow bytes, so the
       shadow-vs-oracle selfcheck must flag the under-repair — unless the
       stolen range happened to hold the same bytes as the snapshot, in
       which case a clean audit is the correct verdict, not a miss. *)
    if post = [] then
      (Tolerated, "no steps after injection to dirty the journal")
    else begin
      san.San.snapshot ();
      List.iter (fun s -> ignore (exec_step san slots s)) post;
      match Shadow_mem.chaos_drop_journal shadow ~pick with
      | None -> (Tolerated, "journal empty at the restore point")
      | Some (lo, len) -> (
        san.San.restore ();
        match first_mismatch heap shadow with
        | Some (n, m) ->
          (Detected,
           Printf.sprintf
             "restore under-repaired segs [%d, +%d): %d mismatch(es); %s" lo
             len n
             (Selfcheck.mismatch_to_string m))
        | None ->
          (Tolerated,
           Printf.sprintf
             "stolen range [%d, +%d) matched the snapshot bytes" lo len))
    end)

(* ---------- plane 2: allocator pressure ---------- *)

let run_alloc_cell (cell : Fault.cell) fault =
  let audit_tail san shadow =
    match first_mismatch san.San.heap shadow with
    | None -> Ok ()
    | Some (_, m) -> Error (Selfcheck.mismatch_to_string m)
  in
  match fault with
  | Fault.Oom_at n -> (
    let sc = Difftest.gen_clean ~seed:cell.Fault.scenario_seed in
    let mallocs =
      List.length
        (List.filter
           (function Scenario.Alloc _ -> true | _ -> false)
           sc.Scenario.sc_steps)
    in
    let san, shadow = Gs_runtime.create_exposed cell_config in
    Heap.chaos_oom_after san.San.heap n;
    let slots = Hashtbl.create 4 in
    match
      List.iter (fun s -> ignore (exec_step san slots s)) sc.Scenario.sc_steps
    with
    | () ->
      Heap.chaos_oom_after san.San.heap (-1);
      if n >= mallocs then
        (Tolerated,
         Printf.sprintf "countdown %d beyond the scenario's %d mallocs" n mallocs)
      else (Silent, "armed OOM never raised")
    | exception Out_of_memory -> (
      match audit_tail san shadow with
      | Ok () ->
        (Degraded,
         Printf.sprintf "Out_of_memory at malloc %d/%d; shadow audit clean" n
           mallocs)
      | Error m -> (Silent, "shadow inconsistent after OOM: " ^ m)))
  | Fault.Tiny_arena arena -> (
    let config = { Heap.arena_size = arena; redzone = 16; quarantine_budget = 512 } in
    let san, shadow = Gs_runtime.create_exposed config in
    let rng = Rng.create cell.Fault.scenario_seed in
    let live = ref [] in
    match
      for _ = 1 to 48 do
        let obj = san.San.malloc (16 + (8 * Rng.int rng 24)) in
        live := obj.Memsim.Memobj.base :: !live;
        if Rng.bool rng then (
          match !live with
          | b :: rest ->
            live := rest;
            ignore (san.San.free b)
          | [] -> ())
      done
    with
    | () -> (
      let flushes = Heap.pressure_flushes san.San.heap in
      match audit_tail san shadow with
      | Ok () ->
        (Degraded,
         Printf.sprintf "%d pressure flush(es) absorbed the squeeze; audit clean"
           flushes)
      | Error m -> (Silent, "shadow inconsistent under pressure: " ^ m))
    | exception Out_of_memory -> (
      match audit_tail san shadow with
      | Ok () ->
        (Degraded,
         Printf.sprintf
           "Out_of_memory after %d pressure flush(es); diagnostic raised, audit clean"
           (Heap.pressure_flushes san.San.heap))
      | Error m -> (Silent, "shadow inconsistent after arena OOM: " ^ m)))
  | Fault.Quarantine_thrash { budget; churn } -> (
    let config =
      { Heap.arena_size = 32 * 1024; redzone = 16; quarantine_budget = budget }
    in
    let san, shadow = Gs_runtime.create_exposed config in
    for _ = 1 to churn do
      let obj = san.San.malloc 48 in
      ignore (san.San.free obj.Memsim.Memobj.base)
    done;
    let victim = san.San.malloc 48 in
    ignore (san.San.free victim.Memsim.Memobj.base);
    let uaf =
      san.San.access ~base:victim.Memsim.Memobj.base
        ~addr:(victim.Memsim.Memobj.base + 8) ~width:1
    in
    match (uaf, audit_tail san shadow) with
    | Some r, Ok () ->
      (Degraded,
       Printf.sprintf "%s still caught after %d churns (bypasses=%d); audit clean"
         (Report.kind_name r.Report.kind)
         churn
         (Heap.quarantine_bypasses san.San.heap))
    | None, _ -> (Silent, "use-after-free lost to quarantine thrash")
    | Some _, Error m -> (Silent, "shadow inconsistent after thrash: " ^ m))
  | Fault.Fragmentation { allocs; size } -> (
    let arena = (allocs * (size + 32)) + 1024 in
    let config = { Heap.arena_size = arena; redzone = 16; quarantine_budget = 0 } in
    let san, shadow = Gs_runtime.create_exposed config in
    let bases = Array.init allocs (fun _ -> (san.San.malloc size).Memsim.Memobj.base) in
    Array.iteri (fun i b -> if i mod 2 = 0 then ignore (san.San.free b)) bases;
    match
      for _ = 1 to allocs do
        ignore (san.San.malloc (size / 4))
      done
    with
    | () -> (
      match audit_tail san shadow with
      | Ok () ->
        (Tolerated,
         Printf.sprintf "fit-path reuse over %d holes; shadow audit clean"
           ((allocs + 1) / 2))
      | Error m -> (Silent, "shadow inconsistent after fragmentation: " ^ m))
    | exception Out_of_memory -> (
      match audit_tail san shadow with
      | Ok () -> (Degraded, "fragmented arena exhausted; diagnostic raised, audit clean")
      | Error m -> (Silent, "shadow inconsistent after fragmentation OOM: " ^ m)))

(* ---------- plane 3: execution faults ---------- *)

let run_exec_cell (cell : Fault.cell) fault =
  match fault with
  | Fault.Task_raise { at; tasks; jobs } -> (
    (* two failing indices: the pool must re-raise the lowest one
       regardless of scheduling *)
    let work =
      Array.init tasks (fun i () ->
          if i = at || i = tasks - 1 then raise (Chaos_task i) else i * i)
    in
    match Pool.run ~jobs work with
    | _ -> (Silent, "poisoned pool returned results")
    | exception Chaos_task i ->
      if i = at then
        (Degraded,
         Printf.sprintf "lowest-index exception (task %d of %d) re-raised at jobs=%d"
           at tasks jobs)
      else
        (Silent,
         Printf.sprintf "nondeterministic exception: task %d instead of %d" i at))
  | Fault.Pathological_shard { heavy; repeat; jobs } ->
    let tasks = 8 in
    let work k =
      let rng = Rng.create (cell.Fault.scenario_seed + k) in
      let rounds = if k = heavy then repeat * 64 else repeat in
      let acc = ref 0 in
      for _ = 1 to rounds do
        acc := (!acc * 31) + Rng.int rng 1024
      done;
      !acc
    in
    let serial = Pool.run ~jobs:1 (Array.init tasks (fun k () -> work k)) in
    let parallel = Pool.run ~jobs (Array.init tasks (fun k () -> work k)) in
    if serial = parallel then
      (Tolerated,
       Printf.sprintf "shard %d skewed 64x; results identical at jobs=%d" heavy jobs)
    else (Silent, "parallel results diverged from serial under skew")

(* ---------- plane 4: input faults ---------- *)

let run_input_cell prepared (cell : Fault.cell) fault =
  match fault with
  | Fault.Corrupt_corpus { seed } -> (
    let violations =
      [| Difftest.V_overflow; V_underflow; V_far_jump; V_uaf; V_double_free;
         V_mid_free |]
    in
    let sc =
      Difftest.gen_buggy ~seed:cell.Fault.scenario_seed
        violations.(seed mod Array.length violations)
    in
    let mutation, bad = Corpus_tools.corrupt_text ~seed (Corpus.to_string sc) in
    match Corpus.of_string bad with
    | Error e -> (Detected, Printf.sprintf "%s rejected: %s" mutation e)
    | Ok sc' -> (
      match Scenario.validate sc' with
      | Ok () ->
        (Tolerated,
         Printf.sprintf "%s left a label-consistent scenario (%d steps)" mutation
           (List.length sc'.Scenario.sc_steps))
      | Error e -> (Silent, Printf.sprintf "%s accepted inconsistent input: %s" mutation e)))
  | Fault.Corrupt_ndjson { seed } -> (
    let text =
      match List.assoc_opt cell.Fault.cell_id prepared with
      | Some t -> t
      | None -> failwith "chaos: ndjson input not prepared"
    in
    let mutation, bad = Corpus_tools.corrupt_text ~seed text in
    match Export.check_ndjson bad with
    | Error e -> (Detected, Printf.sprintf "%s rejected: %s" mutation e)
    | Ok n ->
      (Tolerated, Printf.sprintf "%s left %d valid event line(s)" mutation n))

(* ---------- matrix driver ---------- *)

(* NDJSON victims are captured serially before the parallel phase: the
   telemetry tracer is a global sink, and two cells tracing concurrently
   would interleave events and break byte-determinism across --jobs. *)
let prepare_inputs cells =
  List.filter_map
    (fun (cell : Fault.cell) ->
      match cell.Fault.spec with
      | Fault.F_input (Fault.Corrupt_ndjson _) ->
        let sc = Difftest.gen_clean ~seed:cell.Fault.scenario_seed in
        Some (cell.Fault.cell_id, String.concat "\n" (Exec.capture_trace sc))
      | _ -> None)
    cells

let run_cell prepared (cell : Fault.cell) =
  let outcome, detail =
    try
      match cell.Fault.spec with
      | Fault.F_shadow f -> run_shadow_cell cell f
      | Fault.F_alloc f -> run_alloc_cell cell f
      | Fault.F_exec f -> run_exec_cell cell f
      | Fault.F_input f -> run_input_cell prepared cell f
    with e -> (Silent, "uncaught exception: " ^ Printexc.to_string e)
  in
  { r_cell = cell; r_outcome = outcome; r_detail = detail }

let tally stats rows =
  List.iter
    (fun row ->
      stats.faults_injected <- stats.faults_injected + 1;
      match row.r_outcome with
      | Detected -> stats.faults_detected <- stats.faults_detected + 1
      | Degraded -> stats.runs_degraded <- stats.runs_degraded + 1
      | Tolerated -> stats.faults_tolerated <- stats.faults_tolerated + 1
      | Silent -> stats.silent_corruptions <- stats.silent_corruptions + 1)
    rows

(* jobs is deliberately absent from the rendered report: the output must
   diff clean across --jobs values (the CI determinism leg relies on it) *)
let render_round buf ~seed rows =
  Buffer.add_string buf (Printf.sprintf "chaos matrix seed=%d\n" seed);
  let header = [ "cell"; "plane"; "fault"; "outcome"; "detail" ] in
  let table_rows =
    List.map
      (fun row ->
        [
          row.r_cell.Fault.cell_id;
          Fault.plane_name row.r_cell.Fault.plane;
          Fault.spec_name row.r_cell.Fault.spec;
          outcome_name row.r_outcome;
          row.r_detail;
        ])
      rows
  in
  Buffer.add_string buf
    (Table.render
       ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left; Table.Left ]
       (header :: table_rows))

let run_round ~seed ~jobs =
  let cells = Fault.matrix ~seed in
  let prepared = prepare_inputs cells in
  let rows = Pool.map ~jobs (run_cell prepared) cells in
  rows

let contract_held stats = stats.silent_corruptions = 0

let run ?(soak = 1) ~seed ~jobs () =
  let soak = max 1 soak in
  let buf = Buffer.create 4096 in
  let total = fresh_stats () in
  let seeds =
    (* explicit recursion: List.init's evaluation order is unspecified and
       the rng draws must happen in round order *)
    let rng = Rng.create seed in
    let rec go i acc =
      if i = soak then List.rev acc
      else
        go (i + 1) ((if i = 0 then seed else Rng.int rng 0x3FFFFFFF) :: acc)
    in
    go 0 []
  in
  List.iteri
    (fun i round_seed ->
      if i > 0 then Buffer.add_char buf '\n';
      if soak > 1 then
        Buffer.add_string buf (Printf.sprintf "-- soak round %d/%d --\n" (i + 1) soak);
      let rows = run_round ~seed:round_seed ~jobs in
      let round = fresh_stats () in
      tally round rows;
      Metric.add stats_spec total round;
      render_round buf ~seed:round_seed rows;
      Buffer.add_string buf
        (String.concat " "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              (Metric.to_assoc stats_spec round)));
      Buffer.add_char buf '\n')
    seeds;
  if soak > 1 then (
    Buffer.add_string buf
      (Printf.sprintf "\nsoak total over %d round(s): %s\n" soak
         (String.concat " "
            (List.map
               (fun (k, v) -> Printf.sprintf "%s=%d" k v)
               (Metric.to_assoc stats_spec total)))));
  Buffer.add_string buf
    (if contract_held total then
       "contract: HELD (every fault detected, degraded or tolerated)\n"
     else
       Printf.sprintf "contract: VIOLATED (%d silent corruption(s))\n"
         total.silent_corruptions);
  (Buffer.contents buf, contract_held total)
