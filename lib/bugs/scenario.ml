module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer

type step =
  | Alloc of { slot : int; size : int; kind : Memsim.Memobj.kind }
  | Free_slot of int
  | Free_at of { slot : int; delta : int }
  | Access of { slot : int; off : int; width : int }
  | Access_loop of { slot : int; from_ : int; to_ : int; step : int; width : int }
  | Region of { slot : int; off : int; len : int }
  | Access_null of { off : int; width : int }

type t = { sc_id : string; sc_cwe : int; sc_buggy : bool; sc_steps : step list }

let loop_offsets ~from_ ~to_ ~step =
  assert (step <> 0);
  let rec go acc off =
    if (step > 0 && off >= to_) || (step < 0 && off <= to_) then List.rev acc
    else go (off :: acc) (off + step)
  in
  go [] from_

let run_reports (san : San.t) t =
  let slots = Hashtbl.create 4 in
  let base slot =
    match Hashtbl.find_opt slots slot with
    | Some b -> b
    | None -> failwith (t.sc_id ^ ": use of unallocated slot")
  in
  let reports = ref [] in
  let note = function None -> () | Some r -> reports := r :: !reports in
  List.iter
    (fun step ->
      match step with
      | Alloc { slot; size; kind } ->
        let obj = san.San.malloc ~kind size in
        Hashtbl.replace slots slot obj.Memsim.Memobj.base
      | Free_slot slot -> note (san.San.free (base slot))
      | Free_at { slot; delta } -> note (san.San.free (base slot + delta))
      | Access { slot; off; width } ->
        let b = base slot in
        note (san.San.access ~base:b ~addr:(b + off) ~width)
      | Access_loop { slot; from_; to_; step; width } ->
        let b = base slot in
        let cache = san.San.new_cache ~base:b in
        List.iter
          (fun off -> note (san.San.cached_access cache ~off ~width))
          (loop_offsets ~from_ ~to_ ~step);
        note (san.San.flush_cache cache)
      | Region { slot; off; len } ->
        let b = base slot in
        if len > 0 then note (san.San.check_region ~lo:(b + off) ~hi:(b + off + len))
      | Access_null { off; width } ->
        note (san.San.access ~base:0 ~addr:off ~width))
    t.sc_steps;
  List.rev !reports

let run san t = run_reports san t <> []

(* Static ground truth from the step list alone: sizes and lifetimes are
   known by construction. *)
let ground_truth t =
  let slots = Hashtbl.create 4 in
  let violation = ref false in
  let oob slot off width =
    match Hashtbl.find_opt slots slot with
    | None -> true
    | Some (size, freed) -> freed || off < 0 || off + width > size
  in
  List.iter
    (fun step ->
      match step with
      | Alloc { slot; size; _ } -> Hashtbl.replace slots slot (size, false)
      | Free_slot slot -> (
        match Hashtbl.find_opt slots slot with
        | Some (size, false) -> Hashtbl.replace slots slot (size, true)
        | Some (_, true) | None -> violation := true)
      | Free_at { slot; delta } ->
        if delta <> 0 then violation := true
        else (
          match Hashtbl.find_opt slots slot with
          | Some (size, false) -> Hashtbl.replace slots slot (size, true)
          | Some (_, true) | None -> violation := true)
      | Access { slot; off; width } ->
        if oob slot off width then violation := true
      | Access_loop { slot; from_; to_; step; width } ->
        List.iter
          (fun off -> if oob slot off width then violation := true)
          (loop_offsets ~from_ ~to_ ~step)
      | Region { slot; off; len } ->
        if len > 0 && oob slot off len then violation := true
      | Access_null _ -> violation := true)
    t.sc_steps;
  !violation

let validate t =
  let violation = ground_truth t in
  if violation = t.sc_buggy then Ok ()
  else
    Error
      (Printf.sprintf "%s: labelled %s but ground truth says %s" t.sc_id
         (if t.sc_buggy then "buggy" else "clean")
         (if violation then "buggy" else "clean"))
