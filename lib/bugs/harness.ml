module Memsim = Giantsan_memsim

type tool = Giantsan | Asan | Asanmm | Lfp | Pac

let tool_name = function
  | Giantsan -> "GiantSan"
  | Asan -> "ASan"
  | Asanmm -> "ASan--"
  | Lfp -> "LFP"
  | Pac -> "PAC"

let all_tools = [ Giantsan; Asan; Asanmm; Lfp; Pac ]

let make_sanitizer ?(redzone = 16) ?(quarantine = 16 * 1024) tool =
  let config =
    { Memsim.Heap.arena_size = 32 * 1024; redzone; quarantine_budget = quarantine }
  in
  match tool with
  | Giantsan -> Giantsan_core.Gs_runtime.create config
  | Asan -> Giantsan_asan.Asan_runtime.create config
  | Asanmm -> Giantsan_asan.Asan_runtime.create_named "ASan--" config
  | Lfp -> Giantsan_lfp.Lfp_runtime.create config
  | Pac -> Giantsan_pac.Pac_runtime.create config

let detected ?redzone ?quarantine tool scenario =
  Scenario.run (make_sanitizer ?redzone ?quarantine tool) scenario

let count_detected ?redzone ?quarantine tool scenarios =
  List.fold_left
    (fun acc sc ->
      if detected ?redzone ?quarantine tool sc then acc + 1 else acc)
    0 scenarios

let false_positives ?redzone tool scenarios =
  List.fold_left
    (fun acc sc ->
      if (not sc.Scenario.sc_buggy) && detected ?redzone tool sc then acc + 1
      else acc)
    0 scenarios

let validate_corpus scenarios =
  List.filter_map
    (fun sc ->
      match Scenario.validate sc with Ok () -> None | Error e -> Some e)
    scenarios
