(** Bug-scenario DSL.

    A scenario is a short script of allocations, frees and (possibly
    out-of-bounds) accesses, executed directly against a sanitizer's
    runtime API. The detectability studies (Tables 3, 4 and 5) are corpora
    of these scenarios: the ground-truth label says whether the scenario
    contains a violation; a sanitizer scores a detection when any of its
    checks fires. *)

type step =
  | Alloc of { slot : int; size : int; kind : Giantsan_memsim.Memobj.kind }
      (** slot := malloc(size) — slots are scenario-local pointer registers *)
  | Free_slot of int
  | Free_at of { slot : int; delta : int }
      (** free(slot + delta): CWE-761 when delta <> 0 *)
  | Access of { slot : int; off : int; width : int }
      (** one anchored access at slot + off *)
  | Access_loop of { slot : int; from_ : int; to_ : int; step : int; width : int }
      (** a cached loop: byte offsets from_, from_+step, ... below to_
          (or above, when step < 0), through the history cache, with the
          loop-exit flush *)
  | Region of { slot : int; off : int; len : int }
      (** a memset/strcpy-style region operation *)
  | Access_null of { off : int; width : int }
      (** dereference of the null page at byte [off] *)

type t = {
  sc_id : string;
  sc_cwe : int;  (** CWE number, or 0 for CVE/Magma scenarios *)
  sc_buggy : bool;  (** ground truth: does a violation occur at runtime? *)
  sc_steps : step list;
}

val loop_offsets : from_:int -> to_:int -> step:int -> int list
(** The offsets an [Access_loop] visits (ascending when [step > 0],
    descending when [step < 0]; empty when already past [to_]). *)

val run : Giantsan_sanitizer.Sanitizer.t -> t -> bool
(** Execute against a (fresh) sanitizer; [true] if any check reported. *)

val run_reports :
  Giantsan_sanitizer.Sanitizer.t -> t -> Giantsan_sanitizer.Report.t list
(** Like {!run} but returns every report the checks produced, in execution
    order. The fuzzer's coverage map keys on the report kinds. *)

val ground_truth : t -> bool
(** Does the scenario really contain a violation? Computed statically from
    the step list alone (sizes and lifetimes are known by construction),
    ignoring the [sc_buggy] label. The fuzzer's referee: mutated scenarios
    get their truth from here, not from the label they inherited. *)

val validate : t -> (unit, string) result
(** Sanity-check the ground-truth label against the oracle: running the
    scenario on a Native heap, does some access really leave its intended
    object (or touch freed memory)? Used by the corpus self-tests. *)
