(** Detection harness: run scenario corpora under each tool and count. *)

type tool = Giantsan | Asan | Asanmm | Lfp | Pac

val tool_name : tool -> string

val all_tools : tool list
(** Every backend under study, PAC included — the differential fuzzer and
    the Juliet/CVE detection tables iterate this list, so a backend left
    out of it is silently uncovered (the bug that kept PAC fuzz-blind). *)

val make_sanitizer :
  ?redzone:int -> ?quarantine:int -> tool -> Giantsan_sanitizer.Sanitizer.t
(** Fresh sanitizer on a small arena (each scenario runs in isolation, like
    one Juliet test process). Redzone defaults to the paper's 16 bytes. *)

val detected : ?redzone:int -> ?quarantine:int -> tool -> Scenario.t -> bool

val count_detected :
  ?redzone:int -> ?quarantine:int -> tool -> Scenario.t list -> int

val false_positives : ?redzone:int -> tool -> Scenario.t list -> int
(** Number of *clean* scenarios the tool wrongly flags (Table 3's "no
    false-positive issues" claim). *)

val validate_corpus : Scenario.t list -> string list
(** Ground-truth label errors in a corpus (must be empty; corpus self-test). *)
