(** CLI-facing corpus utilities: differential fuzzing runs and corpus
    ground-truth validation. *)

val fuzz : ?jobs:int -> seed:int -> count:int -> unit -> string
(** Run [count] random clean scenarios and [count] scenarios per violation
    kind through all four tools plus the SoftBound-flavoured checker;
    render a detection matrix and a list of anomalies (false positives, or
    ASan-family misses of near-object violations). An empty anomaly list is
    the expected steady state. [jobs] shards the populations across a
    domain pool; the report is byte-identical for every value. *)

val validate : unit -> string
(** Re-validate the ground-truth labels of every generated corpus (Juliet,
    Magma, CVEs, fuzzer smoke samples) and report. *)
