(** CLI-facing corpus utilities: differential fuzzing runs and corpus
    ground-truth validation. *)

val fuzz : ?jobs:int -> seed:int -> count:int -> unit -> string
(** Run [count] random clean scenarios and [count] scenarios per violation
    kind through all four tools plus the SoftBound-flavoured checker;
    render a detection matrix and a list of anomalies (false positives, or
    ASan-family misses of near-object violations). An empty anomaly list is
    the expected steady state. [jobs] shards the populations across a
    domain pool; the report is byte-identical for every value. *)

val validate : unit -> string
(** Re-validate the ground-truth labels of every generated corpus (Juliet,
    Magma, CVEs, fuzzer smoke samples) and report. *)

val corrupt_text : seed:int -> string -> string * string
(** Deterministically corrupt a corpus/NDJSON text for the chaos engine's
    input-fault plane: returns [(mutation_name, corrupted_text)] where the
    mutation is one of truncation, byte garbling, a duplicated line, or a
    deleted line, chosen and parameterised by [seed]. Feeding the result to
    [Corpus.of_string] must end in either a parse rejection or a scenario
    whose recomputed ground truth still matches its label — the parser's
    label revalidation makes silently accepting a wrong verdict
    structurally impossible. *)
