module Table = Giantsan_util.Table
module Scenario = Giantsan_bugs.Scenario
module Difftest = Giantsan_bugs.Difftest
module Harness = Giantsan_bugs.Harness
module Softbound = Giantsan_bugs.Softbound
module Juliet = Giantsan_bugs.Juliet
module Magma = Giantsan_bugs.Magma
module Cves = Giantsan_bugs.Cves

let violations =
  [
    Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
    Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
  ]

type fuzz_row = {
  fr_label : string;
  fr_expect : [ `All | `None | `Giantsan_only ];
  fr_g : int;
  fr_a : int;
  fr_am : int;
  fr_l : int;
  fr_sb : int;
  fr_n : int;
}

let fuzz ?(jobs = 1) ~seed ~count () =
  let buf = Buffer.create 2048 in
  let anomalies = ref [] in
  let note fmt = Printf.ksprintf (fun s -> anomalies := s :: !anomalies) fmt in
  (* one shard per population: generation and the five detection counts are
     the expensive, side-effect-free part; anomaly notes and row rendering
     stay serial and in population order, so output is identical for every
     [jobs] *)
  let populations =
    ("clean", `None, `Clean)
    :: List.map
         (fun v ->
           let expect =
             match v with
             | Difftest.V_far_jump -> `Giantsan_only
             | _ -> `All
           in
           (Difftest.violation_name v, expect, `Buggy v))
         violations
  in
  let counted =
    Giantsan_parallel.Pool.map ~jobs
      (fun (fr_label, fr_expect, kind) ->
        let scenarios =
          List.init count (fun i ->
              match kind with
              | `Clean -> Difftest.gen_clean ~seed:(seed + i)
              | `Buggy v -> Difftest.gen_buggy ~seed:(seed + i) v)
        in
        let det tool = Harness.count_detected tool scenarios in
        let fr_sb =
          List.length
            (List.filter
               (Softbound.run_with_laundering ~launder_slots:[])
               scenarios)
        in
        {
          fr_label; fr_expect;
          fr_g = det Harness.Giantsan;
          fr_a = det Harness.Asan;
          fr_am = det Harness.Asanmm;
          fr_l = det Harness.Lfp;
          fr_sb;
          fr_n = List.length scenarios;
        })
      populations
  in
  let rows =
    List.map
      (fun { fr_label = label; fr_expect; fr_g = g; fr_a = a; fr_am = am;
             fr_l = l; fr_sb = sb; fr_n = n } ->
        (match fr_expect with
        | `All ->
          if g < n then note "%s: GiantSan missed %d" label (n - g);
          if a < n then note "%s: ASan missed %d" label (n - a);
          if am < n then note "%s: ASan-- missed %d" label (n - am)
        | `None ->
          if g > 0 then note "%s: GiantSan false positives: %d" label g;
          if a > 0 then note "%s: ASan false positives: %d" label a;
          if am > 0 then note "%s: ASan-- false positives: %d" label am;
          if l > 0 then note "%s: LFP false positives: %d" label l;
          if sb > 0 then note "%s: SoftBound false positives: %d" label sb
        | `Giantsan_only ->
          if g < n then note "%s: GiantSan missed %d" label (n - g);
          if a > 0 then note "%s: ASan unexpectedly caught %d" label a);
        [
          label; string_of_int g; string_of_int a; string_of_int am;
          string_of_int l; string_of_int sb; string_of_int n;
        ])
      counted
  in
  Buffer.add_string buf
    (Printf.sprintf
       "Differential fuzz: %d scenarios per row (seed %d)\n\n" count seed);
  Buffer.add_string buf
    (Table.render
       ([ "population"; "GiantSan"; "ASan"; "ASan--"; "LFP"; "SoftBound"; "n" ]
       :: rows));
  (match List.rev !anomalies with
  | [] -> Buffer.add_string buf "\nNo anomalies.\n"
  | l ->
    Buffer.add_string buf "\nANOMALIES:\n";
    List.iter (fun a -> Buffer.add_string buf ("  " ^ a ^ "\n")) l);
  Buffer.contents buf

(* Deterministic corpus-file corruption for the chaos engine's input-fault
   plane. The mutation kinds mirror what actually goes wrong with files on
   disk: truncation (partial write), garbled bytes (bit rot), a duplicated
   line (botched merge), and a deleted line (hand edit). Corpus parsing
   revalidates the buggy label against recomputed ground truth, so every
   corruption must end in either a parse rejection or a scenario that is
   still label-consistent — silent acceptance of a wrong verdict is
   structurally impossible, and the chaos engine asserts exactly that. *)
let corrupt_text ~seed text =
  let rng = Giantsan_util.Rng.create seed in
  let n = String.length text in
  match Giantsan_util.Rng.int rng 4 with
  | 0 ->
    (* truncate mid-file *)
    let keep = if n <= 1 then 0 else Giantsan_util.Rng.int rng n in
    ("truncated", String.sub text 0 keep)
  | 1 ->
    (* garble a handful of bytes *)
    let b = Bytes.of_string text in
    let flips = 1 + Giantsan_util.Rng.int rng 8 in
    for _ = 1 to flips do
      if n > 0 then begin
        let p = Giantsan_util.Rng.int rng n in
        Bytes.set b p (Char.chr (Giantsan_util.Rng.int rng 256))
      end
    done;
    ("garbled", Bytes.to_string b)
  | 2 ->
    (* duplicate one line *)
    let lines = String.split_on_char '\n' text in
    let k = List.length lines in
    if k = 0 then ("dup-line", text)
    else begin
      let at = Giantsan_util.Rng.int rng k in
      let out =
        List.concat
          (List.mapi (fun i l -> if i = at then [ l; l ] else [ l ]) lines)
      in
      ("dup-line", String.concat "\n" out)
    end
  | _ ->
    (* drop one line *)
    let lines = String.split_on_char '\n' text in
    let k = List.length lines in
    if k <= 1 then ("drop-line", "")
    else begin
      let at = Giantsan_util.Rng.int rng k in
      let out = List.filteri (fun i _ -> i <> at) lines in
      ("drop-line", String.concat "\n" out)
    end

let validate () =
  let buf = Buffer.create 1024 in
  let check label scenarios =
    let errors = Harness.validate_corpus scenarios in
    Buffer.add_string buf
      (Printf.sprintf "%-28s %6d cases  %s\n" label (List.length scenarios)
         (if errors = [] then "OK"
          else Printf.sprintf "%d LABEL ERRORS" (List.length errors)));
    List.iteri
      (fun i e -> if i < 5 then Buffer.add_string buf ("    " ^ e ^ "\n"))
      errors
  in
  List.iter
    (fun cwe ->
      check
        (Printf.sprintf "juliet CWE-%d (buggy+clean)" cwe)
        (Juliet.buggy_cases cwe @ Juliet.clean_cases cwe))
    Juliet.cwe_ids;
  List.iter
    (fun p -> check ("magma " ^ p.Magma.mg_name) (Magma.cases p))
    Magma.projects;
  check "cves"
    (List.map (fun (c : Cves.t) -> c.Cves.cve_scenario) Cves.all);
  check "difftest smoke"
    (List.init 200 (fun i ->
         if i mod 2 = 0 then Difftest.gen_clean ~seed:i
         else
           Difftest.gen_buggy ~seed:i
             (List.nth violations (i mod List.length violations))));
  Buffer.contents buf
