(** Experiment drivers: one per table/figure in the paper's evaluation.

    Every driver runs its whole experiment (deterministically) and returns
    the rendered report as a string; [run_all] chains them. The CLI in
    [bin/] exposes each one as a subcommand, and EXPERIMENTS.md records the
    paper-vs-measured comparison. *)

type outcome = {
  o_id : string;  (** "table2", "fig11", ... *)
  o_title : string;
  o_body : string;  (** rendered tables/notes *)
}

val table1 : unit -> outcome
(** Operation- vs instruction-level check counts on Table 1's four idioms. *)

val table2 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** SPEC-like overhead study incl. the ablation columns (§5.1, §5.2).
    [quick] runs 6 of the 24 profiles (for smoke tests). [jobs] shards the
    profile rows across a domain pool (default 1 = serial); the rendered
    table is byte-identical for every value. *)

val fig10 : ?quick:bool -> ?jobs:int -> unit -> outcome
(** Proportion of accesses per optimization category (§5.2). [jobs] as in
    {!table2}. *)

val table3 : unit -> outcome
(** Juliet-shaped detection study (§5.3). *)

val table4 : unit -> outcome
(** CVE scenario detection (§5.3). *)

val table5 : ?scale:int -> unit -> outcome
(** Magma-shaped redzone study (§5.3). [scale] divides the population
    sizes (default 1 = full size). *)

val fig11 : ?sizes_kb:int list -> ?reps:int -> unit -> outcome
(** Traversal-pattern timing study (§5.4): wall-clock milliseconds for
    Native / GiantSan / ASan on forward, random and reverse scans. *)

(** {2 Extension experiments}

    Not in the paper: ablations of design choices the paper asserts, so the
    repository can measure them. *)

val ablation_encoding : unit -> outcome
(** Shadow-encoding design space: metadata loads per region check under
    ASan's plain encoding, a capped run-length encoding, and binary
    folding, across region sizes. *)

val sweep_redzone : unit -> outcome
(** Detection of long-jump overflows as the redzone grows: the trade-off
    anchor-based checking dissolves (§4.4.1). *)

val sweep_quarantine : unit -> outcome
(** Use-after-free detection as allocation churn ages the freed block
    through quarantines of different budgets (§5.4's bypass window). *)

val compat : unit -> outcome
(** The §2.1 compatibility argument, measured: a SoftBound-flavoured
    pointer-based checker loses everything once a pointer is laundered
    through an integer; location-based GiantSan is unaffected. *)

val all_ids : string list
(** The paper's seven experiments. *)

val extra_ids : string list

val run : ?quick:bool -> ?jobs:int -> string -> outcome
(** Run one experiment by id (paper or extension). [jobs] parallelizes the
    experiments that shard cleanly (currently [table2] and [fig10]); the
    others ignore it. Raises [Invalid_argument] on unknown ids. *)

val run_all : ?quick:bool -> ?jobs:int -> unit -> outcome list
(** The paper's experiments, in order. *)
