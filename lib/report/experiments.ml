module Table = Giantsan_util.Table
module Stats = Giantsan_util.Stats
module Ast = Giantsan_ir.Ast
module B = Giantsan_ir.Builder
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Counters = Giantsan_sanitizer.Counters
module San = Giantsan_sanitizer.Sanitizer
module Specgen = Giantsan_workload.Specgen
module Profiles = Giantsan_workload.Profiles
module Runner = Giantsan_workload.Runner
module Traversal = Giantsan_workload.Traversal
module Scenario = Giantsan_bugs.Scenario
module Juliet = Giantsan_bugs.Juliet
module Cves = Giantsan_bugs.Cves
module Magma = Giantsan_bugs.Magma
module Harness = Giantsan_bugs.Harness
module Pool = Giantsan_parallel.Pool

type outcome = { o_id : string; o_title : string; o_body : string }

let heading title =
  Printf.sprintf "%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

(* Executed-check delta between a setup-only program and setup+idiom. *)
let idiom_checks config ~mk_program =
  let run prog =
    let san = Runner.make_sanitizer config in
    let plan = Instrument.plan (Runner.instrument_mode config) prog in
    let out = Interp.run san plan prog in
    assert (out.Interp.reports = []);
    (Counters.total_checks san.San.counters, san.San.shadow_loads ())
  in
  let setup_checks, setup_loads = run (mk_program ~with_idiom:false) in
  let full_checks, full_loads = run (mk_program ~with_idiom:true) in
  (full_checks - setup_checks, full_loads - setup_loads)

let n_table1 = 100

let idiom_const ~with_idiom =
  let b = B.create () in
  B.program "const"
    ([ B.malloc "p" (B.i 512) ]
    @
    if with_idiom then
      [
        B.assign "s"
          B.(
            load b ~base:"p" ~index:(i 0) ~scale:4 ()
            + load b ~base:"p" ~index:(i 10) ~scale:4 ()
            + load b ~base:"p" ~index:(i 20) ~scale:4 ());
      ]
    else [])

let idiom_memset ~with_idiom =
  let b = B.create () in
  B.program "memset"
    ([ B.malloc "p" (B.i (4 * n_table1)) ]
    @
    if with_idiom then
      [
        B.memset b ~dst:"p" ~doff:(B.i 0) ~len:(B.i (4 * n_table1))
          ~value:(B.i 0);
      ]
    else [])

let idiom_loop ~with_idiom =
  let b = B.create () in
  B.program "loop"
    ([ B.malloc "p" (B.i (4 * n_table1)) ]
    @
    if with_idiom then
      [
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i n_table1)
          [ B.store b ~base:"p" ~index:(B.v "i") ~scale:4 ~value:(B.v "i") () ];
      ]
    else [])

let idiom_alias ~with_idiom =
  let b = B.create () in
  B.program "alias"
    ([
       B.malloc "p" (B.i (4 * n_table1));
       B.malloc "vec" (B.i (8 * n_table1));
       B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i n_table1)
         [
           B.store b ~base:"vec" ~index:(B.v "i") ~scale:8
             ~value:B.(v "i" % i n_table1)
             ();
         ];
     ]
    @
    if with_idiom then
      [
        B.store b ~base:"p" ~index:(B.i 0) ~scale:4 ~value:(B.i 10) ();
        B.for_ b ~idx:"i" ~lo:(B.i 0) ~hi:(B.i n_table1)
          [
            B.assign "t" (B.load b ~base:"vec" ~index:(B.v "i") ~scale:8 ());
            B.store b ~base:"p" ~index:(B.v "t") ~scale:4 ~value:(B.v "t") ();
          ];
      ]
    else [])

let table1 () =
  let idioms =
    [
      ("p[0] + p[10] + p[20]", "Constant Propagation", idiom_const);
      ("memset(p, 0, N)", "Predefined Semantics", idiom_memset);
      ("for i < N: p[i] = foo(i)", "Loop Bound Analysis", idiom_loop);
      ("p[0] = 10; for i: p[vec[i]] = ...", "Must-alias Analysis", idiom_alias);
    ]
  in
  let rows =
    [
      [ "Example"; "Analysis Method"; "GiantSan checks"; "GiantSan loads";
        "ASan checks"; "ASan loads" ];
    ]
    @ List.map
        (fun (label, method_, mk_program) ->
          let g_checks, g_loads = idiom_checks Runner.Giantsan ~mk_program in
          let a_checks, a_loads = idiom_checks Runner.Asan ~mk_program in
          [
            label; method_;
            string_of_int g_checks; string_of_int g_loads;
            string_of_int a_checks; string_of_int a_loads;
          ])
        idioms
  in
  let body =
    heading "Table 1: operation-level vs instruction-level protection"
    ^ Printf.sprintf "(N = %d; counts are executed checks / metadata loads)\n\n"
        n_table1
    ^ Table.render rows
    ^ "\nPaper's shape: 1 operation-level check replaces 3 / Theta(N) / N / \
       N+1 instruction-level checks.\n"
  in
  { o_id = "table1"; o_title = "Table 1"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let ratio_cell native_ns r =
  match r.Runner.r_status with
  | Runner.Compile_error -> "CE"
  | Runner.Runtime_error -> "RE"
  | Runner.Completed ->
    Table.fpct (Runner.overhead_pct ~native:native_ns ~sanitized:r.Runner.r_sim_ns)

let table2 ?(quick = false) ?(jobs = 1) () =
  let profiles =
    if quick then
      List.filteri (fun i _ -> i mod 4 = 0) Profiles.all
    else Profiles.all
  in
  let configs = Runner.all_configs in
  let header =
    [ "Programs"; "Native(s)" ]
    @ List.concat_map
        (fun c ->
          match c with
          | Runner.Native -> []
          | c -> [ Runner.config_name c ^ " R" ])
        configs
  in
  let ratios : (Runner.config, float list ref) Hashtbl.t = Hashtbl.create 8 in
  let note_ratio config r =
    let cell =
      match Hashtbl.find_opt ratios config with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.add ratios config l;
        l
    in
    cell := r :: !cell
  in
  (* profile rows are independent shards (each run builds its own heap and
     shadow); the ratio bookkeeping below stays serial and in canonical
     profile order, so the rendered table is identical for every [jobs] *)
  let profile_results =
    Pool.map ~jobs (fun p -> (p, Runner.run_profile ~configs p)) profiles
  in
  let rows =
    List.map
      (fun (p, results) ->
        let native =
          List.find (fun r -> r.Runner.r_config = Runner.Native) results
        in
        let native_ns = native.Runner.r_sim_ns in
        let cells =
          List.filter_map
            (fun r ->
              if r.Runner.r_config = Runner.Native then None
              else begin
                (if r.Runner.r_status = Runner.Completed then
                   note_ratio r.Runner.r_config
                     (Runner.overhead_pct ~native:native_ns
                        ~sanitized:r.Runner.r_sim_ns));
                Some (ratio_cell native_ns r)
              end)
            results
        in
        [ p.Specgen.p_name;
          Printf.sprintf "%.0f" (Profiles.native_seconds p.Specgen.p_name) ]
        @ cells)
      profile_results
  in
  let geo_row =
    [ "Geometric Means"; "" ]
    @ List.filter_map
        (fun c ->
          if c = Runner.Native then None
          else
            match Hashtbl.find_opt ratios c with
            | Some { contents = l } when l <> [] ->
              Some (Table.fpct (Stats.geomean l))
            | _ -> Some "-")
        configs
  in
  let body =
    heading "Table 2: runtime overhead (simulated from event counts)"
    ^ "Native(s) shows the paper's wall-clock anchor; R columns are this\n\
       reproduction's simulated overhead ratios (cost model over measured\n\
       event counts — see DESIGN.md). CE/RE mirror LFP's build failures.\n\n"
    ^ Table.render (header :: (rows @ [ geo_row ]))
    ^ "\nPaper geometric means: GiantSan 146.04%, ASan 212.58%, ASan-- \
       174.89%, LFP 161.76%,\nCacheOnly 175.63%, EliminationOnly 170.24%.\n"
  in
  { o_id = "table2"; o_title = "Table 2"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Figure 10                                                           *)
(* ------------------------------------------------------------------ *)

let fig10 ?(quick = false) ?(jobs = 1) () =
  let profiles =
    if quick then List.filteri (fun i _ -> i mod 4 = 0) Profiles.all
    else Profiles.all
  in
  let results =
    Pool.map ~jobs (fun p -> (p, Runner.run_one p Runner.Giantsan)) profiles
  in
  let rows =
    List.map
      (fun (p, r) ->
        let s = Option.get r.Runner.r_stats in
        let total =
          s.Interp.x_plain + s.Interp.x_cached + s.Interp.x_eliminated
        in
        let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 total) in
        let fast = s.Interp.x_plain_fast in
        let full = s.Interp.x_plain - fast in
        [
          p.Specgen.p_name;
          Table.fpct (pct s.Interp.x_eliminated);
          Table.fpct (pct s.Interp.x_cached);
          Table.fpct (pct fast);
          Table.fpct (pct full);
        ])
      results
  in
  let avg col =
    Stats.mean
      (List.map
         (fun row ->
           let cell = List.nth row col in
           float_of_string (String.sub cell 0 (String.length cell - 1)))
         rows)
  in
  let body =
    heading "Figure 10: proportion of accesses per optimization"
    ^ Table.render
        ([ [ "Project"; "Eliminated"; "Cached"; "FastOnly"; "FullCheck" ] ]
        @ rows
        @ [
            [
              "Mean";
              Table.fpct (avg 1);
              Table.fpct (avg 2);
              Table.fpct (avg 3);
              Table.fpct (avg 4);
            ];
          ])
    ^ "\nPaper: on average 52.56% of checks optimized (30.76% eliminated + \
       21.80% cached);\n49.22% of the remainder need only the fast check.\n"
  in
  { o_id = "fig10"; o_title = "Figure 10"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  let rows =
    List.map
      (fun cwe ->
        let buggy = Juliet.buggy_cases cwe in
        let clean = Juliet.clean_cases cwe in
        let errors = Harness.validate_corpus (buggy @ clean) in
        assert (errors = []);
        let count tool = Harness.count_detected tool buggy in
        let fps =
          List.map (fun t -> Harness.false_positives t clean) Harness.all_tools
        in
        assert (List.for_all (fun n -> n = 0) fps);
        [
          Printf.sprintf "%d: %s" cwe (Juliet.cwe_name cwe);
          string_of_int (count Harness.Giantsan);
          string_of_int (count Harness.Asan);
          string_of_int (count Harness.Asanmm);
          string_of_int (count Harness.Lfp);
          string_of_int (count Harness.Pac);
          string_of_int (Juliet.total cwe);
        ])
      Juliet.cwe_ids
  in
  let col_sum i =
    List.fold_left (fun acc row -> acc + int_of_string (List.nth row i)) 0 rows
  in
  let total_row =
    [ "Total" ]
    @ List.map (fun i -> string_of_int (col_sum i)) [ 1; 2; 3; 4; 5; 6 ]
  in
  let body =
    heading "Table 3: detection on the Juliet-shaped corpus"
    ^ "All non-buggy twins pass under every tool (no false positives), as \
       in the paper.\n\n"
    ^ Table.render
        (([ "CWE & Type"; "GiantSan"; "ASan"; "ASan--"; "LFP"; "PAC"; "Total" ]
          :: rows)
        @ [ total_row ])
    ^ "\nPaper totals: GiantSan/ASan/ASan-- 5063, LFP 2088, of 5075. PAC is \
       this repo's tagged-pointer extension, not a paper column.\n"
  in
  { o_id = "table3"; o_title = "Table 3"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  let mark b = if b then "Y" else "-" in
  let rows =
    List.map
      (fun (c : Cves.t) ->
        let d tool = Harness.detected tool c.Cves.cve_scenario in
        [
          c.Cves.cve_program;
          c.Cves.cve_id;
          c.Cves.cve_class;
          mark (d Harness.Giantsan);
          mark (d Harness.Asan);
          mark (d Harness.Asanmm);
          mark (d Harness.Lfp);
          mark (d Harness.Pac);
        ])
      Cves.all
  in
  let body =
    heading "Table 4: CVE scenarios (Linux Flaw Project shapes)"
    ^ Table.render
        ([
           "Program"; "CVE"; "Class"; "GiantSan"; "ASan"; "ASan--"; "LFP"; "PAC";
         ]
        :: rows)
    ^ "\nPaper: all tools detect everything except LFP on CVE-2017-12858, \
       CVE-2017-9165 and CVE-2017-14409.\n"
  in
  { o_id = "table4"; o_title = "Table 4"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Table 5                                                             *)
(* ------------------------------------------------------------------ *)

let table5 ?(scale = 1) () =
  let scaled p =
    if scale = 1 then p
    else
      {
        p with
        Magma.mg_short = p.Magma.mg_short / scale;
        mg_mid = p.Magma.mg_mid / scale;
        mg_far = p.Magma.mg_far / scale;
        mg_latent = p.Magma.mg_latent / scale;
      }
  in
  let rows =
    List.map
      (fun p ->
        let p = scaled p in
        let cases = Magma.cases p in
        let count tool rz = Harness.count_detected ~redzone:rz tool cases in
        [
          Printf.sprintf "%s (%s)" p.Magma.mg_name p.Magma.mg_loc;
          string_of_int (count Harness.Asanmm 16);
          string_of_int (count Harness.Asanmm 512);
          string_of_int (count Harness.Asan 16);
          string_of_int (count Harness.Asan 512);
          string_of_int (count Harness.Giantsan 16);
          string_of_int (Magma.total p);
        ])
      Magma.projects
  in
  let body =
    heading "Table 5: Magma-shaped redzone study"
    ^ (if scale <> 1 then
         Printf.sprintf "(populations scaled down by %d)\n\n" scale
       else "\n")
    ^ Table.render
        ([
           "Project"; "ASan--(rz16)"; "ASan--(rz512)"; "ASan(rz16)";
           "ASan(rz512)"; "GiantSan(rz16)"; "Total";
         ]
        :: rows)
    ^ "\nPaper (php row): 1556 / 1962 / 1556 / 1962 / 2019 of 3072 — the \
       anchor closes the redzone-bypass gap.\n"
  in
  { o_id = "table5"; o_title = "Table 5"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Figure 11                                                           *)
(* ------------------------------------------------------------------ *)

let time_ms f =
  let t0 = Sys.time () in
  f ();
  (Sys.time () -. t0) *. 1000.0

let fig11 ?(sizes_kb = [ 1; 2; 4; 8; 16 ]) ?(reps = 300) () =
  let tools =
    [
      ("Native", fun () -> Runner.make_sanitizer Runner.Native);
      ("GiantSan", fun () -> Runner.make_sanitizer Runner.Giantsan);
      ("ASan", fun () -> Runner.make_sanitizer Runner.Asan);
    ]
  in
  let patterns =
    [
      ("Forward", fun san ~base ~size -> ignore (Traversal.forward san ~base ~size));
      ("Random",
       fun san ~base ~size -> ignore (Traversal.random san ~seed:7 ~base ~size));
      ("Reverse", fun san ~base ~size -> ignore (Traversal.reverse san ~base ~size));
    ]
  in
  let sections =
    List.map
      (fun (pat_name, kernel) ->
        let rows =
          List.map
            (fun kb ->
              let size = kb * 1024 in
              let cells =
                List.map
                  (fun (_, mk) ->
                    let san = mk () in
                    let base = Traversal.prepare san ~size in
                    let ms =
                      time_ms (fun () ->
                          for _ = 1 to reps do
                            kernel san ~base ~size
                          done)
                    in
                    Printf.sprintf "%.2f" ms)
                  tools
              in
              (string_of_int kb :: cells))
            sizes_kb
        in
        heading (Printf.sprintf "Figure 11 (%s traversal)" pat_name)
        ^ Table.render
            ([ "KB"; "Native ms"; "GiantSan ms"; "ASan ms" ] :: rows))
      patterns
  in
  (* the §5.4 mitigation, timed: one up-front region check, then a
     metadata-free descending scan *)
  let mitigation_rows =
    List.map
      (fun kb ->
        let size = kb * 1024 in
        let cells =
          List.map
            (fun kernel ->
              let san = Runner.make_sanitizer Runner.Giantsan in
              let base = Traversal.prepare san ~size in
              Printf.sprintf "%.2f"
                (time_ms (fun () ->
                     for _ = 1 to reps do
                       ignore (kernel san ~base ~size)
                     done)))
            [
              (fun san ~base ~size -> Traversal.reverse san ~base ~size);
              (fun san ~base ~size -> Traversal.reverse_prescan san ~base ~size);
            ]
        in
        (string_of_int kb :: cells))
      sizes_kb
  in
  let mitigation =
    heading "Figure 11 addendum: the §5.4 prescan mitigation"
    ^ Table.render
        ([ "KB"; "GiantSan reverse ms"; "GiantSan prescan ms" ]
        :: mitigation_rows)
  in
  let body =
    String.concat "\n" (sections @ [ mitigation ])
    ^ Printf.sprintf
        "\n(%d repetitions per point; wall clock of the OCaml kernels)\n\
         Paper: GiantSan 1.07x faster than ASan forward, 1.48x faster \
         random, 1.39x SLOWER reverse.\n"
        reps
  in
  { o_id = "fig11"; o_title = "Figure 11"; o_body = body }

(* ------------------------------------------------------------------ *)
(* Extension experiments (not in the paper)                            *)
(* ------------------------------------------------------------------ *)

let ablation_encoding () =
  let module SC = Giantsan_core.State_code in
  let module RC = Giantsan_core.Region_check in
  let module Folding = Giantsan_core.Folding in
  let module Linear = Giantsan_core.Linear_encoding in
  let module AE = Giantsan_asan.Asan_encoding in
  let module Shadow_mem = Giantsan_shadow.Shadow_mem in
  let sizes = [ 64; 512; 4096; 32768; 262144 ] in
  let segments = 40000 in
  let rows =
    List.map
      (fun size ->
        let segs = size / 8 in
        (* ASan encoding *)
        let m_asan = Shadow_mem.create ~segments ~fill:AE.unallocated in
        Shadow_mem.fill_range m_asan ~lo:0 ~hi:segs AE.good;
        let asan_loads =
          Shadow_mem.reset_counters m_asan;
          assert (Giantsan_asan.Asan_runtime.region_is_safe m_asan ~lo:0 ~hi:size = None);
          Shadow_mem.loads m_asan
        in
        (* capped run-length encoding *)
        let m_lin = Shadow_mem.create ~segments ~fill:SC.unallocated in
        Linear.poison_good_run m_lin ~first_seg:0 ~count:segs;
        let lin_loads =
          Shadow_mem.reset_counters m_lin;
          assert (Linear.check m_lin ~l:0 ~r:size);
          Shadow_mem.loads m_lin
        in
        (* binary folding *)
        let m_fold = Shadow_mem.create ~segments ~fill:SC.unallocated in
        Folding.poison_good_run m_fold ~first_seg:0 ~count:segs;
        let fold_loads =
          Shadow_mem.reset_counters m_fold;
          assert (RC.is_safe (RC.check m_fold ~l:0 ~r:size));
          Shadow_mem.loads m_fold
        in
        [
          string_of_int size;
          string_of_int asan_loads;
          string_of_int lin_loads;
          string_of_int fold_loads;
        ])
      sizes
  in
  let body =
    heading "Ablation (extension): shadow-encoding design space"
    ^ "Metadata loads to safeguard one region of the given size.\n\n"
    ^ Table.render
        ([ "Region bytes"; "ASan (plain)"; "Run-length (cap 63)"; "Binary folding" ]
        :: rows)
    ^ "\nThe run-length cap (6 bits) buys a 63x improvement but stays \
       linear;\nfolding spends the same 6 bits on a logarithm and stays \
       constant.\n"
  in
  { o_id = "ablation-encoding"; o_title = "Encoding ablation"; o_body = body }

let sweep_redzone () =
  (* jump-distance population: 24..1984 bytes past a 32-byte object, with a
     4 KiB landing pad right after it *)
  let distances = List.init 196 (fun i -> 32 + (i * 10)) in
  let case dist =
    {
      Scenario.sc_id = Printf.sprintf "sweep_rz_%d" dist;
      sc_cwe = 0;
      sc_buggy = true;
      sc_steps =
        [
          Scenario.Alloc { slot = 0; size = 32; kind = Giantsan_memsim.Memobj.Heap };
          Scenario.Alloc { slot = 1; size = 4096; kind = Giantsan_memsim.Memobj.Heap };
          Scenario.Access { slot = 0; off = dist; width = 1 };
        ];
    }
  in
  let cases = List.map case distances in
  let total = List.length cases in
  let rows =
    List.map
      (fun rz ->
        [
          string_of_int rz;
          Printf.sprintf "%d/%d"
            (Harness.count_detected ~redzone:rz Harness.Asan cases)
            total;
          Printf.sprintf "%d/%d"
            (Harness.count_detected ~redzone:rz Harness.Giantsan cases)
            total;
        ])
      [ 16; 64; 128; 256; 512; 1024 ]
  in
  let body =
    heading "Sweep (extension): redzone size vs long-jump detection"
    ^ Printf.sprintf
        "%d overflows at distances 32..%d bytes past a 32-byte object.\n\n"
        total
        (List.fold_left max 0 distances)
    ^ Table.render ([ "redzone"; "ASan"; "GiantSan (anchored)" ] :: rows)
    ^ "\nASan's detection is bounded by the redzone it pays memory for;\n\
       the anchor makes the trade-off disappear (§4.4.1).\n"
  in
  { o_id = "sweep-redzone"; o_title = "Redzone sweep"; o_body = body }

let sweep_quarantine () =
  (* free the victim; age it through the quarantine with differently-sized
     alloc/free churn; grab a same-sized block (which reuses the victim's
     once it has been recycled); then dereference the stale pointer. While
     the victim is quarantined the access hits freed shadow (detected);
     once recycled and re-occupied, the stale pointer is indistinguishable
     from a valid one (the §5.4 bypass). *)
  let case churn =
    {
      Scenario.sc_id = Printf.sprintf "sweep_q_%d" churn;
      sc_cwe = 416;
      sc_buggy = true;
      sc_steps =
        [
          Scenario.Alloc { slot = 0; size = 64; kind = Giantsan_memsim.Memobj.Heap };
          Scenario.Free_slot 0;
        ]
        @ List.concat
            (List.init churn (fun k ->
                 [
                   Scenario.Alloc
                     { slot = 1 + k; size = 128; kind = Giantsan_memsim.Memobj.Heap };
                   Scenario.Free_slot (1 + k);
                 ]))
        @ [
            Scenario.Alloc
              { slot = 99; size = 64; kind = Giantsan_memsim.Memobj.Heap };
            Scenario.Access { slot = 0; off = 8; width = 8 };
          ];
    }
  in
  let cases = List.map case (List.init 64 (fun i -> i)) in
  let total = List.length cases in
  let rows =
    List.map
      (fun budget ->
        [
          string_of_int budget;
          Printf.sprintf "%d/%d"
            (Harness.count_detected ~quarantine:budget Harness.Giantsan cases)
            total;
        ])
      [ 0; 512; 1024; 2048; 4096; 8192 ]
  in
  let body =
    heading "Sweep (extension): quarantine budget vs use-after-free detection"
    ^ Printf.sprintf
        "%d stale dereferences, each aged by 0..%d intervening 128-byte \
         alloc/free churn pairs before the block is re-occupied.\n\n"
        total (total - 1)
    ^ Table.render ([ "quarantine bytes"; "GiantSan detections" ] :: rows)
    ^ "\nA bigger quarantine keeps freed blocks poisoned longer; the bypass\n\
       window (§5.4) is exactly the population the budget ages out.\n"
  in
  { o_id = "sweep-quarantine"; o_title = "Quarantine sweep"; o_body = body }

let compat () =
  let module Softbound = Giantsan_bugs.Softbound in
  let module Difftest = Giantsan_bugs.Difftest in
  (* overflow scenarios whose pointer either keeps its tag or round-trips
     through an integer cast (laundered) before the bad access *)
  let n = 200 in
  let scenarios =
    List.init n (fun seed -> Difftest.gen_buggy ~seed Difftest.V_overflow)
  in
  let count f = List.length (List.filter f scenarios) in
  let victim_slots sc =
    List.filter_map
      (fun s ->
        match s with Scenario.Alloc { slot; _ } -> Some slot | _ -> None)
      sc.Scenario.sc_steps
  in
  let rows =
    [
      [
        "pointer kept its tag";
        string_of_int
          (count (fun sc -> Softbound.run_with_laundering ~launder_slots:[] sc));
        string_of_int (count (Harness.detected Harness.Giantsan));
        string_of_int n;
      ];
      [
        "pointer laundered (int cast)";
        string_of_int
          (count (fun sc ->
               Softbound.run_with_laundering ~launder_slots:(victim_slots sc) sc));
        string_of_int (count (Harness.detected Harness.Giantsan));
        string_of_int n;
      ];
    ]
  in
  let body =
    heading "Compatibility (extension): pointer-based vs location-based"
    ^ "The §2.1 motivation, measured: a SoftBound-flavoured pointer-based\n\
       checker on seeded overflows, with and without pointer-to-integer\n\
       laundering of the victim pointer.\n\n"
    ^ Table.render
        ([ "flow"; "SoftBound-like"; "GiantSan"; "total" ] :: rows)
    ^ "\nTag propagation failure silently disables the pointer-based tool;\n\
       location-based metadata lives at the address and survives any cast.\n"
  in
  { o_id = "compat"; o_title = "Compatibility study"; o_body = body }

(* ------------------------------------------------------------------ *)

let all_ids = [ "table1"; "table2"; "fig10"; "table3"; "table4"; "table5"; "fig11" ]

let extra_ids =
  [ "ablation-encoding"; "sweep-redzone"; "sweep-quarantine"; "compat" ]

let run ?(quick = false) ?(jobs = 1) id =
  (* every experiment is a telemetry span: wall-clock + allocation stats
     land in the span log (and in summary.json under --telemetry) *)
  Giantsan_telemetry.Span.with_span ("experiment:" ^ id) (fun () ->
      match id with
      | "table1" -> table1 ()
      | "table2" -> table2 ~quick ~jobs ()
      | "fig10" -> fig10 ~quick ~jobs ()
      | "table3" -> table3 ()
      | "table4" -> table4 ()
      | "table5" -> table5 ~scale:(if quick then 20 else 1) ()
      | "fig11" ->
        if quick then fig11 ~sizes_kb:[ 1; 4 ] ~reps:50 () else fig11 ()
      | "ablation-encoding" -> ablation_encoding ()
      | "sweep-redzone" -> sweep_redzone ()
      | "sweep-quarantine" -> sweep_quarantine ()
      | "compat" -> compat ()
      | other -> invalid_arg ("Experiments.run: unknown experiment " ^ other))

let run_all ?quick ?jobs () = List.map (fun id -> run ?quick ?jobs id) all_ids
