(** Event-count cost model.

    We cannot run SPEC CPU2017 on real silicon from inside an OCaml
    simulation, so Table 2's execution times are *simulated*: every run
    yields exact event counts (interpreter operations, shadow loads, checks
    by flavour, allocator traffic) and this module collapses them into
    abstract nanoseconds with one global weight table.

    The weights were calibrated ONCE against the paper's geometric means
    (ASan 212.58%, ASan-- 174.89%, GiantSan 146.04%) and are identical for
    every tool and every profile — the per-project spread in the generated
    Table 2 is therefore produced by the measured event counts, not by
    per-project fudging. Absolute seconds are meaningless; ratios are the
    reproduction target. *)

type weights = {
  w_op : float;  (** one interpreter operation (native work) *)
  w_shadow_load : float;  (** one metadata load *)
  w_instr_check : float;  (** compare/branch of an instruction-level check *)
  w_region_check : float;  (** setup of a region check *)
  w_slow_check : float;  (** extra work when the slow path runs *)
  w_cache_hit : float;  (** quasi-bound compare *)
  w_cache_update : float;  (** quasi-bound refresh bookkeeping *)
  w_underflow : float;  (** extra anchor instructions on the low side *)
  w_bounds_check : float;  (** LFP pointer-derived bound computation *)
  w_malloc : float;
  w_free : float;
  w_malloc_sanitized : float;  (** extra per-malloc hook cost in sanitizers *)
  w_poison_segment : float;  (** one shadow byte written while poisoning *)
  w_lfp_stack_op : float;  (** LFP's software stack simulation, per op on
                               stack-heavy code *)
}

val default : weights
(** The calibrated weights used everywhere in the repo; changing them
    invalidates the committed bench baseline (see EXPERIMENTS.md on
    re-baselining). *)

type input = {
  ops : int;
  shadow_loads : int;
  counters : Giantsan_sanitizer.Counters.t;
  is_sanitized : bool;  (** false for the Native run *)
  is_lfp : bool;
  stack_fraction : float;  (** profile's share of stack-heavy operations *)
}

val simulated_ns : ?weights:weights -> input -> float
(** Collapse one run's event counts into simulated nanoseconds. *)
