(** Execute workload profiles under every sanitizer configuration and
    collapse the event counts through the cost model. This is the engine
    behind Table 2 and Figure 10. *)

type config =
  | Native
  | Asan
  | Asanmm
  | Lfp
  | Giantsan
  | Cache_only  (** ablation: GiantSan with history caching only *)
  | Elim_only  (** ablation: GiantSan with check elimination only *)

val config_name : config -> string
val all_configs : config list
(** Native first, then the sanitizers, then the two ablations. *)

val make_sanitizer :
  ?heap:Giantsan_memsim.Heap.config -> config -> Giantsan_sanitizer.Sanitizer.t
(** [heap] defaults to an 8 MiB arena with the paper's redzone/quarantine
    settings. *)

val instrument_mode : config -> Giantsan_analysis.Instrument.mode

type status =
  | Completed
  | Compile_error  (** the tool cannot build the project (LFP, Table 2) *)
  | Runtime_error

type result = {
  r_profile : string;
  r_config : config;
  r_status : status;
  r_ops : int;
  r_shadow_loads : int;
  r_shadow_stores : int;  (** metadata stores (poisoning traffic) *)
  r_counters : Giantsan_sanitizer.Counters.t;
  r_stats : Giantsan_analysis.Interp.exec_stats option;
  r_sim_ns : float;  (** simulated time; [nan] when not Completed *)
  r_reports : int;
}

val run_one :
  ?heap:Giantsan_memsim.Heap.config -> Specgen.profile -> config -> result

val run_profile : ?configs:config list -> Specgen.profile -> result list
val overhead_pct : native:float -> sanitized:float -> float
