(** Execute workload profiles under every sanitizer configuration and
    collapse the event counts through the cost model. This is the engine
    behind Table 2 and Figure 10. *)

type config =
  | Native
  | Asan
  | Asanmm
  | Lfp
  | Pac  (** tagged-pointer authentication backend (lib/pac) *)
  | Giantsan
  | Cache_only  (** ablation: GiantSan with history caching only *)
  | Elim_only  (** ablation: GiantSan with check elimination only *)
      (** The sanitizer configurations of Table 2 ([Native] through
          [Giantsan]) plus the §5.2 ablations and the PAC backend. *)

val config_name : config -> string
(** Stable lowercase name used in reports, telemetry and NDJSON
    (["native"], ["asan"], ["asan--"], ["lfp"], ["giantsan"], ...). *)

val all_configs : config list
(** Native first, then the sanitizers, then the two ablations. [Pac] is
    deliberately absent: the pinned sweep / fuzz / chaos expectations
    enumerate the paper's tool set and must stay byte-stable. *)

val bench_configs : config list
(** [all_configs] plus [Pac] — what the bench profile sweep runs. *)

val make_sanitizer :
  ?heap:Giantsan_memsim.Heap.config -> config -> Giantsan_sanitizer.Sanitizer.t
(** [heap] defaults to an 8 MiB arena with the paper's redzone/quarantine
    settings. *)

val instrument_mode : config -> Giantsan_analysis.Instrument.mode
(** How the static pipeline lowers checks for this configuration
    (e.g. [Elim_only] keeps elimination/promotion but never emits
    cached accesses). *)

type status =
  | Completed
  | Compile_error  (** the tool cannot build the project (LFP, Table 2) *)
  | Runtime_error

type result = {
  r_profile : string;
  r_config : config;
  r_status : status;
  r_ops : int;
  r_shadow_loads : int;
  r_shadow_stores : int;  (** metadata stores (poisoning traffic) *)
  r_counters : Giantsan_sanitizer.Counters.t;
  r_stats : Giantsan_analysis.Interp.exec_stats option;
  r_sim_ns : float;  (** simulated time; [nan] when not Completed *)
  r_reports : int;
}

val run_one :
  ?heap:Giantsan_memsim.Heap.config -> Specgen.profile -> config -> result
(** Execute one (profile, configuration) cell: build a fresh private
    sanitizer via {!make_sanitizer}, generate the profile's program,
    instrument and interpret it, and fold the event counts through the
    cost model. Deterministic — same inputs, bit-identical [result] —
    and self-contained, so cells may run on concurrent domains
    ({!Giantsan_parallel.Sweep}). *)

val run_profile : ?configs:config list -> Specgen.profile -> result list
(** [run_one] for each configuration ([all_configs] by default), in
    order. *)

val overhead_pct : native:float -> sanitized:float -> float
(** Percent slowdown relative to native, Table 2's headline number:
    [(sanitized / native - 1) * 100]. *)
