module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp

type config =
  | Native
  | Asan
  | Asanmm
  | Lfp
  | Pac
  | Giantsan
  | Cache_only
  | Elim_only

let config_name = function
  | Native -> "Native"
  | Asan -> "ASan"
  | Asanmm -> "ASan--"
  | Lfp -> "LFP"
  | Pac -> "PAC"
  | Giantsan -> "GiantSan"
  | Cache_only -> "CacheOnly"
  | Elim_only -> "EliminationOnly"

let all_configs = [ Native; Giantsan; Asan; Asanmm; Lfp; Cache_only; Elim_only ]

(* The bench sweep's configuration list: the paper-reproduction set plus
   the PAC backend. Kept separate from [all_configs] so the pinned sweep /
   fuzz / chaos expectations (which enumerate the paper's tools) stay
   byte-stable. *)
let bench_configs = all_configs @ [ Pac ]

let heap_config =
  {
    Memsim.Heap.arena_size = 8 lsl 20;
    redzone = 16;
    quarantine_budget = 256 * 1024;
  }

let make_sanitizer ?(heap = heap_config) = function
  | Native -> Giantsan_sanitizer.Native.create heap
  | Asan -> Giantsan_asan.Asan_runtime.create heap
  | Asanmm -> Giantsan_asan.Asan_runtime.create_named "ASan--" heap
  | Lfp -> Giantsan_lfp.Lfp_runtime.create heap
  | Pac -> Giantsan_pac.Pac_runtime.create heap
  | Giantsan -> Giantsan_core.Gs_runtime.create heap
  | Cache_only ->
    Giantsan_core.Gs_runtime.create_variant ~name:"GiantSan-CacheOnly"
      ~use_cache:true heap
  | Elim_only ->
    Giantsan_core.Gs_runtime.create_variant ~name:"GiantSan-ElimOnly"
      ~use_cache:false heap

let instrument_mode = function
  | Native -> Instrument.Native
  | Asan -> Instrument.Asan
  | Asanmm -> Instrument.Asanmm
  | Lfp -> Instrument.Lfp
  | Pac -> Instrument.Pac
  | Giantsan -> Instrument.Giantsan
  | Cache_only -> Instrument.Giantsan_cache_only
  | Elim_only -> Instrument.Giantsan_elim_only

type status = Completed | Compile_error | Runtime_error

type result = {
  r_profile : string;
  r_config : config;
  r_status : status;
  r_ops : int;
  r_shadow_loads : int;
  r_shadow_stores : int;
  r_counters : Counters.t;
  r_stats : Interp.exec_stats option;
  r_sim_ns : float;
  r_reports : int;
}

let lfp_status (p : Specgen.profile) =
  match p.Specgen.p_lfp_status with
  | `Ok -> Completed
  | `Compile_error -> Compile_error
  | `Runtime_error -> Runtime_error

let skipped p config status =
  {
    r_profile = p.Specgen.p_name;
    r_config = config;
    r_status = status;
    r_ops = 0;
    r_shadow_loads = 0;
    r_shadow_stores = 0;
    r_counters = Counters.create ();
    r_stats = None;
    r_sim_ns = nan;
    r_reports = 0;
  }

let run_one ?heap (p : Specgen.profile) config =
  match config with
  | Lfp when lfp_status p <> Completed -> skipped p config (lfp_status p)
  | _ ->
    let san = make_sanitizer ?heap config in
    let prog = Specgen.generate p in
    let plan = Instrument.plan (instrument_mode config) prog in
    let out = Interp.run san plan prog in
    let input =
      {
        Cost_model.ops = out.Interp.ops;
        shadow_loads = san.San.shadow_loads ();
        counters = san.San.counters;
        is_sanitized = config <> Native;
        is_lfp = config = Lfp;
        stack_fraction = p.Specgen.p_stack_fraction;
      }
    in
    {
      r_profile = p.Specgen.p_name;
      r_config = config;
      r_status = Completed;
      r_ops = out.Interp.ops;
      r_shadow_loads = san.San.shadow_loads ();
      r_shadow_stores = san.San.shadow_stores ();
      r_counters = san.San.counters;
      r_stats = Some out.Interp.stats;
      r_sim_ns = Cost_model.simulated_ns input;
      r_reports = List.length out.Interp.reports;
    }

let run_profile ?(configs = all_configs) p =
  List.map (run_one p) configs

let overhead_pct ~native ~sanitized = 100.0 *. sanitized /. native
