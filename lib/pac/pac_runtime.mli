(** The PAC backend behind the common {!Giantsan_sanitizer.Sanitizer.t}
    interface: sign on alloc, authenticate on every access and region
    check, strip on free.

    Semantics of a check on [\[lo, hi)] with anchor [a]:
    - the signing allocation is recovered through the allocator's object
      index (the same licence LFP takes for its bound table — the common
      interface passes untagged addresses, see the adapter note in
      [pac_runtime.ml]);
    - a freed or never-allocated anchor fails authentication (stale);
    - a live anchor whose signature fails {!Pac.check} (tag-forge) is a
      wild access;
    - an authenticated pointer is then held to the {e exact} signed bounds
      [\[base, base + size)] — no size-class rounding, no redzone slack.

    Every check costs exactly one authentication ([auth_checks]; one
    metadata load), so region checks are O(1) and
    [supports_operation_level] is true. [shadow_loads]/[shadow_stores]
    report the signature-table traffic. *)

val create :
  ?key:int -> Giantsan_memsim.Heap.config -> Giantsan_sanitizer.Sanitizer.t
(** A fresh PAC runtime over a private heap and signature table. [key]
    seeds the PA key (defaults to {!Pac.default_key}). *)

val create_exposed :
  ?key:int ->
  Giantsan_memsim.Heap.config ->
  Giantsan_sanitizer.Sanitizer.t * Pac.t
(** Like [create] but also hands back the signature table, for white-box
    tests, the tag-forge chaos plane and the service tenant audit. *)
