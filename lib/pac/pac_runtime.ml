module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Report = Giantsan_sanitizer.Report
module Trace = Giantsan_telemetry.Trace
module Histogram = Giantsan_telemetry.Histogram

(* The untagged adapter: the common [San.t] interface passes plain
   addresses, so the PAC field cannot literally ride in them. The adapter
   recovers the signing allocation through the allocator's object index
   ([Heap.find_object], the same licence [lib/lfp] takes for its per-slot
   bound table: it stands in for metadata a real runtime derives from the
   pointer itself) and authenticates its signature. What this adapter
   cannot see is a stale pointer that happens to coincide with a {e new}
   live allocation — the tagged [Pac.authenticate] API does catch that
   (the recycled base carries a fresh salt), and the white-box tests
   exercise it; the detection matrix in DESIGN.md spells out both views. *)

let create_exposed ?key config =
  let heap = Memsim.Heap.create config in
  let pac = Pac.create ?key () in
  let counters = Counters.create () in
  let hists = Histogram.create_set () in
  let name = "PAC" in
  let report ?base ~addr ~size () =
    counters.Counters.errors <- counters.Counters.errors + 1;
    let r =
      Report.make
        ~kind:(Report.classify_access heap ~addr ~base)
        ~addr ~size ~detected_by:name
    in
    Trace.emit_report ~tool:name ~kind:(Report.kind_name r.Report.kind) ~addr;
    Some r
  in
  let report_forged ~addr ~size =
    (* a pointer whose signature fails authentication has no provenance
       the runtime will vouch for — the closest taxonomy entry is a wild
       access *)
    counters.Counters.errors <- counters.Counters.errors + 1;
    let r = Report.make ~kind:Report.Wild_access ~addr ~size ~detected_by:name in
    Trace.emit_report ~tool:name ~kind:(Report.kind_name r.Report.kind) ~addr;
    Some r
  in
  let malloc ?kind size =
    counters.Counters.mallocs <- counters.Counters.mallocs + 1;
    let obj = Memsim.Heap.malloc heap ?kind size in
    ignore (Pac.sign pac ~base:obj.Memsim.Memobj.base);
    Trace.emit_malloc ~tool:name ~base:obj.Memsim.Memobj.base ~size
      ~kind:(Memsim.Memobj.kind_name obj.Memsim.Memobj.kind);
    obj
  in
  let free ptr =
    counters.Counters.frees <- counters.Counters.frees + 1;
    Trace.emit_free ~tool:name ~addr:ptr;
    match Memsim.Heap.free heap ptr with
    | Ok { Memsim.Heap.freed; _ } ->
      (* strip on free: every pointer signed for this allocation is stale
         from here on *)
      ignore (Pac.release pac ~base:freed.Memsim.Memobj.base);
      None
    | Error err ->
      let r = San.free_error_report ~name ~addr:ptr err in
      (match r with
      | Some r ->
        counters.Counters.errors <- counters.Counters.errors + 1;
        Trace.emit_report ~tool:name
          ~kind:(Report.kind_name r.Report.kind)
          ~addr:ptr
      | None -> ());
      r
  in
  (* Authenticate the access [lo, hi) against the signature of the
     allocation [anchor] derives from, then enforce the exact signed
     bounds [base, base + size) — PAC carries the allocation identity, so
     unlike LFP there is no size-class rounding to hide overflows into
     the slot's slack. *)
  let auth_check ~anchor ~lo ~hi =
    counters.Counters.auth_checks <- counters.Counters.auth_checks + 1;
    if anchor < 64 then report ~addr:anchor ~size:(hi - lo) ()
    else
      match Memsim.Heap.find_object heap anchor with
      | None ->
        (* never allocated: no signature can exist, authentication fails *)
        report ~addr:lo ~size:(hi - lo) ()
      | Some obj ->
        let base = obj.Memsim.Memobj.base in
        if obj.Memsim.Memobj.status <> Memsim.Memobj.Live then
          (* the signature was stripped on free: stale pointer *)
          report ~base ~addr:lo ~size:(hi - lo) ()
        else (
          match Pac.check pac ~base with
          | Error _ -> report_forged ~addr:lo ~size:(hi - lo)
          | Ok _ ->
            let b_hi = base + obj.Memsim.Memobj.size in
            if lo < base || hi > b_hi then
              report ~base
                ~addr:(if lo < base then lo else b_hi)
                ~size:(hi - lo) ()
            else None)
  in
  let access ~base ~addr ~width =
    if Trace.is_on () then
      Histogram.observe hists.Histogram.h_access_width width;
    let anchor = if base > 0 then base else addr in
    let r = auth_check ~anchor ~lo:addr ~hi:(addr + width) in
    Trace.emit_access ~tool:name ~addr ~width ~fast:true;
    r
  in
  let check_region ~lo ~hi =
    if hi <= lo then None
    else begin
      (* one authentication covers any length: O(1) like the folded check *)
      let r = auth_check ~anchor:lo ~lo ~hi in
      Trace.emit_region_check ~tool:name ~lo ~hi ~fast:true ~loads:1;
      r
    end
  in
  let snapshot, restore =
    San.snapshot_slot
      ~cap:(fun () ->
        (Memsim.Heap.snapshot heap, Pac.snapshot pac,
         San.counters_copy counters))
      ~put:(fun (hs, ps, cs) ->
        Memsim.Heap.restore heap hs;
        Pac.restore pac ps;
        San.counters_restore counters cs)
  in
  let san =
    {
      San.name;
      heap;
      counters;
      hists;
      (* the signature table is PAC's metadata plane: authentications are
         its loads, sign/strip its stores — what the cost model and the
         service loop's latency synthesis charge for *)
      shadow_loads = (fun () -> Pac.auths pac);
      shadow_stores = (fun () -> Pac.signs pac);
      malloc;
      free;
      access;
      check_region;
      new_cache = (fun ~base -> San.new_cache ~base);
      cached_access =
        (fun cache ~off ~width ->
          access ~base:cache.San.cache_base
            ~addr:(cache.San.cache_base + off) ~width);
      flush_cache = (fun _ -> None);
      supports_operation_level = true;
      snapshot;
      restore;
    }
  in
  San.Registry.register san;
  (san, pac)

let create ?key config = fst (create_exposed ?key config)
