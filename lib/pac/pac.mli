(** Simulated ARM Pointer Authentication (the PACSan scheme).

    A 16-bit Pointer Authentication Code is packed into bits 47..62 of the
    simulated pointer — the bits the simulated virtual address space
    leaves unused, where ARM PA keeps them (ARM uses 48..63 over a 48-bit
    VA; OCaml's 63-bit int is one bit short, so the simulation narrows the
    address space rather than the tag). The PAC is a keyed hash of
    (allocation base, per-allocation salt):

    - {!sign} on allocation draws a fresh salt, stores it in the signature
      table (PACSan's modifier storage) and returns the tagged pointer;
    - {!authenticate} on dereference recomputes the hash from the live
      table entry and compares it against the pointer's tag;
    - {!release} on free removes the entry, so every pointer signed for
      the dead allocation fails authentication from then on — including
      after the memory is recycled for a new allocation, which gets a
      fresh salt and therefore a different tag. That is the intra-object
      use-after-free detection redzone schemes lose once their quarantine
      rotates.

    Everything is deterministic: salts come from a counter, the hash is a
    splitmix64 finalizer (real PA uses QARMA; the simulation only needs a
    deterministic keyed mix), and the chaos hooks ({!forge}, {!drop})
    target the k-th base in sorted order. [signs]/[auths] count metadata
    stores/loads, the currency the cost model and the service loop's
    latency synthesis trade in. *)

val pac_shift : int
(** Bit position of the PAC field (47). *)

val pac_bits : int
(** Width of the PAC field (16). *)

val pac_mask : int
val addr_mask : int

type t

val default_key : int

val create : ?key:int -> unit -> t
(** A fresh signing context with an empty signature table. [key] is the
    per-process PA key (defaults to {!default_key}; vary it to model
    per-tenant keys). *)

val compute : t -> base:int -> salt:int -> int
(** The raw keyed hash, truncated to {!pac_bits} bits (exposed for tests
    and the audit sweep). *)

val tag_of : int -> int
(** The PAC field of a tagged pointer. *)

val strip : int -> int
(** The address bits of a tagged pointer (what the hardware XPACs). *)

val with_tag : int -> int -> int
(** [with_tag ptr tag] installs [tag] in [ptr]'s PAC field. *)

val sign : t -> base:int -> int
(** Sign a fresh allocation: draw a fresh salt, record the signature, and
    return the tagged base pointer. Counts one metadata store. *)

val retag : t -> int -> base:int -> int option
(** Derive an interior pointer: apply [base]'s live tag to [ptr] (pointer
    arithmetic preserves the tag on real hardware). [None] when [base]
    holds no live signature. *)

type failure =
  | Stale  (** no live signature: freed, or never signed *)
  | Forged of { expected : int; got : int }
      (** a live signature exists but the tags disagree *)

val failure_to_string : failure -> string

val authenticate : t -> int -> base:int -> (int, failure) result
(** Authenticate a tagged pointer against [base]'s live signature:
    [Ok (strip ptr)] when the pointer's tag matches the recomputed PAC;
    [Error Stale] when the signature was stripped (use-after-free);
    [Error (Forged _)] on tag mismatch. The PAC is recomputed from the
    stored salt rather than trusted, so signature-table corruption (the
    tag-forge chaos plane) is caught too. Counts one metadata load. *)

val check : t -> base:int -> (int, failure) result
(** Authentication for the untagged adapter path: does [base] hold a
    live, un-forged signature? [Ok pac] on success. Counts one metadata
    load. *)

val release : t -> base:int -> bool
(** Strip on free: remove [base]'s signature (true if one was live).
    Counts one metadata store when a signature was removed. *)

val has : t -> base:int -> bool
val salt_of : t -> base:int -> int option
val pac_of : t -> base:int -> int option

val live : t -> int
(** Number of live signatures. *)

val signs : t -> int
(** Metadata stores so far (sign + strip). *)

val auths : t -> int
(** Metadata loads so far (authenticate/check). *)

val bases : t -> int list
(** Live bases in ascending order — the deterministic iteration order the
    chaos hooks and {!audit} use. *)

(** {1 Chaos hooks (the [tag-forge] fault plane)} *)

val forge : t -> pick:int -> mask:int -> int option
(** Corrupt the stored PAC of the [pick]-th live base (sorted order) by
    xoring in [mask] (forced odd, so the forged tag always differs).
    Returns the victim base, or [None] when the table is empty. Every
    subsequent {!authenticate}/{!check} of that base fails [Forged]. *)

val drop : t -> pick:int -> int option
(** Remove the [pick]-th live signature without a free — models a stolen
    strip. Subsequent authentications fail [Stale]. *)

(** {1 Snapshot / restore (the fuzz-mode profile)} *)

type snapshot

val snapshot : t -> snapshot
(** Capture the signature table, salt counter and metadata-event counters. *)

val restore : t -> snapshot -> unit
(** Rewind to a snapshot from this context. Rolling the salt counter back
    makes a restored run re-issue the same salts — hence the same tags — a
    fresh context would, so persistent-mode verdicts stay byte-identical to
    rebuild mode. *)

val audit : t -> string option
(** Recompute every stored PAC from its salt; [Some detail] on the first
    mismatch (ascending base order). Catches {!forge} but not {!drop} —
    a dropped entry is indistinguishable from a legitimate free without
    the owner's live-object view, which is why the service tenant audit
    also sweeps its slot table. *)
