(* Simulated ARM Pointer Authentication (the PACSan scheme): a 16-bit PAC
   packed into bits 47..62 of the simulated pointer, computed by a keyed
   hash of (address, per-allocation salt). ARM keeps the PAC in bits
   48..63 of a 48-bit VA; an OCaml int has 63 bits, one short, so the
   simulation narrows the address space to 47 bits rather than the tag to
   15 — the tag width is what the architectural false-negative rate
   (2^-16) depends on. The salt table is the analogue
   of PACSan's per-allocation modifier storage; signing on alloc and
   stripping on free is what makes a stale pointer fail authentication
   even after its memory has been recycled for a new allocation — the
   temporal-safety property redzone schemes lose once the quarantine
   rotates.

   The hash is a splitmix64 finalizer over the key, base and salt. Real PA
   uses QARMA; all the simulation needs is a deterministic keyed mix whose
   16-bit truncation makes an unrelated (base, salt) pair collide with
   probability 2^-16, matching the architectural false-negative rate. *)

let pac_shift = 47
let pac_bits = 16
let pac_mask = (1 lsl pac_bits) - 1
let addr_mask = (1 lsl pac_shift) - 1

type entry = { salt : int; pac : int }

type t = {
  key : int;
  sigs : (int, entry) Hashtbl.t;  (* base -> live signature *)
  mutable next_salt : int;
  mutable signs : int;  (* metadata stores: sign on alloc, strip on free *)
  mutable auths : int;  (* metadata loads: salt fetch + recompute *)
}

let default_key = 0x5bd1e995

let create ?(key = default_key) () =
  { key; sigs = Hashtbl.create 64; next_salt = 1; signs = 0; auths = 0 }

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let compute t ~base ~salt =
  let open Int64 in
  let h =
    mix64
      (logxor (of_int t.key)
         (mix64 (add (of_int base) (mul 0x9E3779B97F4A7C15L (of_int salt)))))
  in
  to_int (logand h (of_int pac_mask))

let tag_of ptr = (ptr lsr pac_shift) land pac_mask
let strip ptr = ptr land addr_mask
let with_tag ptr tag = (ptr land addr_mask) lor ((tag land pac_mask) lsl pac_shift)

let sign t ~base =
  let salt = t.next_salt in
  t.next_salt <- t.next_salt + 1;
  let pac = compute t ~base ~salt in
  Hashtbl.replace t.sigs base { salt; pac };
  t.signs <- t.signs + 1;
  with_tag base pac

let retag t ptr ~base =
  match Hashtbl.find_opt t.sigs base with
  | None -> None
  | Some e -> Some (with_tag ptr e.pac)

type failure = Stale | Forged of { expected : int; got : int }

let failure_to_string = function
  | Stale -> "stale pointer: signature stripped (freed or never signed)"
  | Forged { expected; got } ->
    Printf.sprintf "forged tag: expected %#06x, got %#06x" expected got

let authenticate t ptr ~base =
  t.auths <- t.auths + 1;
  match Hashtbl.find_opt t.sigs base with
  | None -> Error Stale
  | Some e ->
    (* recompute rather than trust the stored pac: table corruption (the
       tag-forge chaos plane) must be as visible as a bad pointer tag *)
    let expected = compute t ~base ~salt:e.salt in
    let got = tag_of ptr in
    if got = expected && e.pac = expected then Ok (strip ptr)
    else Error (Forged { expected; got = (if got <> expected then got else e.pac) })

let check t ~base =
  t.auths <- t.auths + 1;
  match Hashtbl.find_opt t.sigs base with
  | None -> Error Stale
  | Some e ->
    let expected = compute t ~base ~salt:e.salt in
    if e.pac = expected then Ok e.pac
    else Error (Forged { expected; got = e.pac })

let release t ~base =
  if Hashtbl.mem t.sigs base then begin
    Hashtbl.remove t.sigs base;
    t.signs <- t.signs + 1;
    true
  end
  else false

let has t ~base = Hashtbl.mem t.sigs base
let salt_of t ~base = Option.map (fun e -> e.salt) (Hashtbl.find_opt t.sigs base)
let pac_of t ~base = Option.map (fun e -> e.pac) (Hashtbl.find_opt t.sigs base)
let live t = Hashtbl.length t.sigs
let signs t = t.signs
let auths t = t.auths

(* Deterministic view of the table for chaos targeting and audits: bases
   in ascending order (hash-table fold order is not stable). *)
let bases t = List.sort compare (Hashtbl.fold (fun b _ l -> b :: l) t.sigs [])

let forge t ~pick ~mask =
  (* or-in bit 0 so the forged tag always differs from the stored one —
     forging must be detectable, never a silent no-op *)
  let mask = (mask land pac_mask) lor 1 in
  match bases t with
  | [] -> None
  | bs ->
    let base = List.nth bs (abs pick mod List.length bs) in
    let e = Hashtbl.find t.sigs base in
    Hashtbl.replace t.sigs base { e with pac = e.pac lxor mask };
    Some base

let drop t ~pick =
  match bases t with
  | [] -> None
  | bs ->
    let base = List.nth bs (abs pick mod List.length bs) in
    Hashtbl.remove t.sigs base;
    Some base

(* Fuzz-mode restore: the table entries are immutable records, so a shallow
   Hashtbl.copy detaches the snapshot completely. Rolling back [next_salt]
   is what makes a restored run re-issue the very same salts — and thus the
   same tags — as a fresh context would, keeping persistent-mode verdicts
   byte-identical to rebuild mode. *)
type snapshot = {
  s_sigs : (int, entry) Hashtbl.t;
  s_next_salt : int;
  s_signs : int;
  s_auths : int;
}

let snapshot t =
  {
    s_sigs = Hashtbl.copy t.sigs;
    s_next_salt = t.next_salt;
    s_signs = t.signs;
    s_auths = t.auths;
  }

let restore t s =
  Hashtbl.reset t.sigs;
  Hashtbl.iter (fun b e -> Hashtbl.add t.sigs b e) s.s_sigs;
  t.next_salt <- s.s_next_salt;
  t.signs <- s.s_signs;
  t.auths <- s.s_auths

let audit t =
  List.find_map
    (fun base ->
      let e = Hashtbl.find t.sigs base in
      let expected = compute t ~base ~salt:e.salt in
      if e.pac <> expected then
        Some
          (Printf.sprintf "pac mismatch at base %d: stored %#06x, expect %#06x"
             base e.pac expected)
      else None)
    (bases t)
