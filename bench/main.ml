(* Wall-clock benchmarks, one group per paper table/figure plus
   microbenchmarks of the primitives. Where Table 2 uses the event-count
   cost model (bin/main.exe table2), these benches time the actual OCaml
   implementations, so relative ordering (not absolute ns) is the point. *)

open Bechamel
open Toolkit
module Memsim = Giantsan_memsim
module San = Giantsan_sanitizer.Sanitizer
module Counters = Giantsan_sanitizer.Counters
module Telemetry = Giantsan_telemetry
module Shadow_mem = Giantsan_shadow.Shadow_mem
module SC = Giantsan_core.State_code
module Folding = Giantsan_core.Folding
module RC = Giantsan_core.Region_check
module Runner = Giantsan_workload.Runner
module Traversal = Giantsan_workload.Traversal
module Specgen = Giantsan_workload.Specgen
module Profiles = Giantsan_workload.Profiles
module Instrument = Giantsan_analysis.Instrument
module Interp = Giantsan_analysis.Interp
module Juliet = Giantsan_bugs.Juliet
module Magma = Giantsan_bugs.Magma
module Harness = Giantsan_bugs.Harness

let config =
  { Memsim.Heap.arena_size = 1 lsl 20; redzone = 16; quarantine_budget = 64 * 1024 }

(* ------------------------------------------------------------------ *)
(* Table 1 flavour: region checks, O(1) vs linear                      *)
(* ------------------------------------------------------------------ *)

let bench_region_check name make_san =
  Test.make ~name
    (Staged.stage
       (let san = make_san config in
        let obj = san.San.malloc 4096 in
        let base = obj.Memsim.Memobj.base in
        fun () -> ignore (san.San.check_region ~lo:base ~hi:(base + 4096))))

let bench_single_access name make_san =
  Test.make ~name
    (Staged.stage
       (let san = make_san config in
        let obj = san.San.malloc 4096 in
        let base = obj.Memsim.Memobj.base in
        fun () -> ignore (san.San.access ~base ~addr:(base + 128) ~width:8)))

let table1_group =
  Test.make_grouped ~name:"table1"
    [
      bench_region_check "giantsan/region-4KiB" Giantsan_core.Gs_runtime.create;
      bench_region_check "asan/region-4KiB(linear)" Giantsan_asan.Asan_runtime.create;
      bench_region_check "lfp/region-4KiB" Giantsan_lfp.Lfp_runtime.create;
      bench_single_access "giantsan/access" Giantsan_core.Gs_runtime.create;
      bench_single_access "asan/access" Giantsan_asan.Asan_runtime.create;
      bench_single_access "lfp/access" Giantsan_lfp.Lfp_runtime.create;
    ]

(* ------------------------------------------------------------------ *)
(* Table 2 flavour: one representative profile per sanitizer           *)
(* ------------------------------------------------------------------ *)

let small_profile =
  {
    (Profiles.find "505.mcf_r") with
    Specgen.p_phases = 4;
    p_iters = 128;
    p_obj_size = 300;
  }

let bench_heap =
  { Memsim.Heap.arena_size = 1 lsl 18; redzone = 16; quarantine_budget = 16 * 1024 }

let bench_profile config_ =
  Test.make
    ~name:(Runner.config_name config_)
    (Staged.stage (fun () ->
         ignore (Runner.run_one ~heap:bench_heap small_profile config_)))

let table2_group =
  Test.make_grouped ~name:"table2"
    (List.map bench_profile Runner.all_configs)

(* ------------------------------------------------------------------ *)
(* Figure 10 flavour: instrumentation planning cost                    *)
(* ------------------------------------------------------------------ *)

let fig10_group =
  let prog = Specgen.generate small_profile in
  Test.make_grouped ~name:"fig10"
    (List.map
       (fun mode ->
         Test.make
           ~name:("plan/" ^ Instrument.mode_name mode)
           (Staged.stage (fun () -> ignore (Instrument.plan mode prog))))
       [ Instrument.Asan; Instrument.Asanmm; Instrument.Giantsan ])

(* ------------------------------------------------------------------ *)
(* Table 3 flavour: Juliet subset per tool                             *)
(* ------------------------------------------------------------------ *)

let juliet_subset =
  List.filteri (fun i _ -> i < 60) (Juliet.buggy_cases 122)

let table3_group =
  Test.make_grouped ~name:"table3"
    (List.map
       (fun tool ->
         Test.make
           ~name:("cwe122x60/" ^ Harness.tool_name tool)
           (Staged.stage (fun () ->
                ignore (Harness.count_detected tool juliet_subset))))
       Harness.all_tools)

(* ------------------------------------------------------------------ *)
(* Table 4 flavour: the CVE corpus per tool                            *)
(* ------------------------------------------------------------------ *)

let table4_group =
  Test.make_grouped ~name:"table4"
    (List.map
       (fun tool ->
         Test.make
           ~name:("cves/" ^ Harness.tool_name tool)
           (Staged.stage (fun () ->
                List.iter
                  (fun (c : Giantsan_bugs.Cves.t) ->
                    ignore (Harness.detected tool c.Giantsan_bugs.Cves.cve_scenario))
                  Giantsan_bugs.Cves.all)))
       Harness.all_tools)

(* ------------------------------------------------------------------ *)
(* Table 5 flavour: scaled php population, rz16 vs rz512               *)
(* ------------------------------------------------------------------ *)

let php_small =
  let p = List.hd Magma.projects in
  {
    p with
    Magma.mg_short = p.Magma.mg_short / 40;
    mg_mid = p.Magma.mg_mid / 40;
    mg_far = p.Magma.mg_far / 40;
    mg_latent = p.Magma.mg_latent / 40;
  }

let table5_group =
  let cases = Magma.cases php_small in
  Test.make_grouped ~name:"table5"
    [
      Test.make ~name:"php/asan-rz16"
        (Staged.stage (fun () ->
             ignore (Harness.count_detected ~redzone:16 Harness.Asan cases)));
      Test.make ~name:"php/asan-rz512"
        (Staged.stage (fun () ->
             ignore (Harness.count_detected ~redzone:512 Harness.Asan cases)));
      Test.make ~name:"php/giantsan-rz16"
        (Staged.stage (fun () ->
             ignore (Harness.count_detected ~redzone:16 Harness.Giantsan cases)));
    ]

(* ------------------------------------------------------------------ *)
(* Figure 11: the traversal patterns, timed for real                   *)
(* ------------------------------------------------------------------ *)

let fig11_bench name make_san kernel =
  Test.make ~name
    (Staged.stage
       (let san = make_san config in
        let base = Traversal.prepare san ~size:16384 in
        fun () -> ignore (kernel san ~base ~size:16384)))

let fig11_group =
  let forward san ~base ~size = Traversal.forward san ~base ~size in
  let random san ~base ~size = Traversal.random san ~seed:11 ~base ~size in
  let reverse san ~base ~size = Traversal.reverse san ~base ~size in
  let tools =
    [
      ("native", fun c -> Giantsan_sanitizer.Native.create c);
      ("giantsan", fun c -> Giantsan_core.Gs_runtime.create c);
      ("asan", fun c -> Giantsan_asan.Asan_runtime.create c);
    ]
  in
  Test.make_grouped ~name:"fig11"
    (List.concat_map
       (fun (tname, mk) ->
         [
           fig11_bench (Printf.sprintf "forward-16KiB/%s" tname) mk forward;
           fig11_bench (Printf.sprintf "random-16KiB/%s" tname) mk random;
           fig11_bench (Printf.sprintf "reverse-16KiB/%s" tname) mk reverse;
         ])
       tools)

(* ------------------------------------------------------------------ *)
(* Microbenchmarks of the primitives                                   *)
(* ------------------------------------------------------------------ *)

let micro_group =
  let m = Shadow_mem.create ~segments:65536 ~fill:SC.unallocated in
  Folding.poison_good_run m ~first_seg:0 ~count:60000;
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"fold/poison-1000-segments"
        (Staged.stage (fun () ->
             Folding.poison_good_run m ~first_seg:0 ~count:1000));
      Test.make ~name:"fold/poison-1000-segments-scalar"
        (Staged.stage (fun () ->
             Folding.poison_good_run_scalar m ~first_seg:0 ~count:1000));
      Test.make ~name:"fold/ci-fast"
        (Staged.stage (fun () -> ignore (RC.check m ~l:0 ~r:1024)));
      Test.make ~name:"fold/ci-slow"
        (Staged.stage (fun () -> ignore (RC.check m ~l:0 ~r:(8 * 48000))));
      Test.make ~name:"fold/upper-bound-walk"
        (Staged.stage (fun () -> ignore (Folding.upper_bound m ~addr:8)));
      Test.make ~name:"alloc/malloc-free-64B"
        (Staged.stage
           (let san = Giantsan_core.Gs_runtime.create config in
            fun () ->
              let obj = san.San.malloc 64 in
              ignore (san.San.free obj.Memsim.Memobj.base)));
      Test.make ~name:"alloc/asan-malloc-free-64B"
        (Staged.stage
           (let san = Giantsan_asan.Asan_runtime.create config in
            fun () ->
              let obj = san.San.malloc 64 in
              ignore (san.San.free obj.Memsim.Memobj.base)));
      Test.make ~name:"cache/hit"
        (Staged.stage
           (let san = Giantsan_core.Gs_runtime.create config in
            let obj = san.San.malloc 1024 in
            let cache = san.San.new_cache ~base:obj.Memsim.Memobj.base in
            ignore (san.San.cached_access cache ~off:1016 ~width:8);
            fun () -> ignore (san.San.cached_access cache ~off:64 ~width:8)));
    ]

(* ------------------------------------------------------------------ *)
(* Encoding ablation: one region check under each encoding             *)
(* ------------------------------------------------------------------ *)

let ablation_group =
  let module Linear = Giantsan_core.Linear_encoding in
  let segments = 40000 in
  let size = 262144 in
  let m_asan =
    Shadow_mem.create ~segments ~fill:Giantsan_asan.Asan_encoding.unallocated
  in
  Shadow_mem.fill_range m_asan ~lo:0 ~hi:(size / 8)
    Giantsan_asan.Asan_encoding.good;
  let m_lin = Shadow_mem.create ~segments ~fill:SC.unallocated in
  Linear.poison_good_run m_lin ~first_seg:0 ~count:(size / 8);
  let m_fold = Shadow_mem.create ~segments ~fill:SC.unallocated in
  Folding.poison_good_run m_fold ~first_seg:0 ~count:(size / 8);
  Test.make_grouped ~name:"ablation"
    [
      Test.make ~name:"region-256KiB/asan-encoding"
        (Staged.stage (fun () ->
             ignore (Giantsan_asan.Asan_runtime.region_is_safe m_asan ~lo:0 ~hi:size)));
      Test.make ~name:"region-256KiB/run-length"
        (Staged.stage (fun () -> ignore (Linear.check m_lin ~l:0 ~r:size)));
      Test.make ~name:"region-256KiB/binary-folding"
        (Staged.stage (fun () -> ignore (RC.check m_fold ~l:0 ~r:size)));
    ]

let groups =
  [
    table1_group; table2_group; fig10_group; table3_group; table4_group;
    table5_group; fig11_group; ablation_group; micro_group;
  ]

let run_group test =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances test in
  let results = Analyze.merge ols instances [ Analyze.all ols Instance.monotonic_clock raw ] in
  let tbl = Hashtbl.find results (Measure.label Instance.monotonic_clock) in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns) :: acc)
      tbl []
  in
  let rows = List.sort compare rows in
  List.iter
    (fun (name, ns) -> Printf.printf "  %-44s %12.1f ns/run\n" name ns)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* --telemetry [FILE]: BENCH_giantsan.json (schema in EXPERIMENTS.md)  *)
(* ------------------------------------------------------------------ *)

(* Bechamel has no CLI layer, so the flags are a plain argv scan. *)
let telemetry_path =
  let argv = Sys.argv in
  let n = Array.length argv in
  let rec scan i =
    if i >= n then None
    else if argv.(i) = "--telemetry" then
      if i + 1 < n && argv.(i + 1) <> "" && argv.(i + 1).[0] <> '-' then
        Some argv.(i + 1)
      else Some "BENCH_giantsan.json"
    else scan (i + 1)
  in
  scan 1

(* --profiles-only skips the wall-clock bechamel groups and runs just the
   deterministic profile sweep — what the CI perf gate compares against the
   committed baseline (wall-clock numbers vary per machine and are not
   gated, so CI need not pay for them). *)
let profiles_only = Array.exists (( = ) "--profiles-only") Sys.argv

(* --jobs N: domain-pool width for the profile sweep (default: one per
   recommended core). The sweep is simulated time over deterministic event
   counts, so every [jobs] value produces the same JSON body — the gate
   passes unchanged on a parallel run; only wall-clock shrinks. *)
let jobs =
  let argv = Sys.argv in
  let n = Array.length argv in
  let rec scan i =
    if i >= n then Giantsan_parallel.Pool.default_jobs ()
    else if argv.(i) = "--jobs" && i + 1 < n then
      match int_of_string_opt argv.(i + 1) with
      | Some j when j > 0 -> j
      | _ -> Giantsan_parallel.Pool.default_jobs ()
    else scan (i + 1)
  in
  scan 1

(* Per-profile simulated cost under every sanitizer configuration, at a
   reduced scale so the sweep stays in seconds, sharded across the domain
   pool (one cell = one private heap/shadow/sanitizer). LFP's compile-error
   profiles report [nan] sim time and are skipped. *)
let profile_stats () =
  let shrink p = { p with Specgen.p_phases = 4; p_iters = 128 } in
  let outcome =
    Giantsan_parallel.Sweep.run ~heap:bench_heap ~jobs
      ~profiles:(List.map shrink Profiles.all)
      ~configs:Runner.bench_configs ()
  in
  List.filter_map
    (fun (r : Runner.result) ->
      if r.Runner.r_status <> Runner.Completed then None
      else
        let c = r.Runner.r_counters in
        Some
          {
            Telemetry.Export.bp_profile = r.Runner.r_profile;
            bp_config = Runner.config_name r.Runner.r_config;
            bp_sim_ns = r.Runner.r_sim_ns;
            bp_ops = r.Runner.r_ops;
            bp_shadow_loads = r.Runner.r_shadow_loads;
            bp_shadow_stores = r.Runner.r_shadow_stores;
            bp_region_checks = c.Counters.region_checks;
            bp_fast_checks = c.Counters.fast_checks;
            bp_slow_checks = c.Counters.slow_checks;
            bp_word_checks = c.Counters.word_checks;
          })
    (Array.to_list outcome.Giantsan_parallel.Sweep.o_results)

(* Deterministic Figure 11 rows: the three traversal kernels per tool at
   16 KiB, reported as cost-model profiles. Unlike the wall-clock [fig11]
   bechamel group these are exact event counts, so the perf gate pins them
   against the committed baseline, and the CI fig11 leg can assert the
   reverse row's word-path ratio and the GiantSan-vs-ASan ordering. *)
let fig11_stats () =
  let module Cost_model = Giantsan_workload.Cost_model in
  let size = 16384 in
  let kernels =
    [
      ( "fig11.forward-16KiB",
        fun san ~base -> Traversal.forward san ~base ~size );
      ( "fig11.random-16KiB",
        fun san ~base -> Traversal.random san ~seed:11 ~base ~size );
      ( "fig11.reverse-16KiB",
        fun san ~base -> Traversal.reverse san ~base ~size );
    ]
  in
  let tools =
    [
      ("native", (fun () -> Giantsan_sanitizer.Native.create config), false);
      ("giantsan", (fun () -> Giantsan_core.Gs_runtime.create config), true);
      ("asan", (fun () -> Giantsan_asan.Asan_runtime.create config), true);
      ("pac", (fun () -> Giantsan_pac.Pac_runtime.create config), true);
    ]
  in
  List.concat_map
    (fun (pname, kernel) ->
      List.map
        (fun (tname, make, sanitized) ->
          let san = make () in
          let base = Traversal.prepare san ~size in
          ignore (kernel san ~base);
          let c = san.San.counters in
          let sim_ns =
            Cost_model.simulated_ns
              {
                Cost_model.ops = size / 8;
                shadow_loads = san.San.shadow_loads ();
                counters = c;
                is_sanitized = sanitized;
                is_lfp = false;
                stack_fraction = 0.0;
              }
          in
          {
            Telemetry.Export.bp_profile = pname;
            bp_config = tname;
            bp_sim_ns = sim_ns;
            bp_ops = size / 8;
            bp_shadow_loads = san.San.shadow_loads ();
            bp_shadow_stores = san.San.shadow_stores ();
            bp_region_checks = c.Counters.region_checks;
            bp_fast_checks = c.Counters.fast_checks;
            bp_slow_checks = c.Counters.slow_checks;
            bp_word_checks = c.Counters.word_checks;
          })
        tools)
    kernels

(* Fuzz-mode throughput rows: per-exec reset cost under the two execution
   profiles, for every policy backend. One measured pass drives both
   projections — the engine's determinism tests prove a restored sanitizer
   is event-count-identical to a fresh one, so the exec-side event counts
   are shared and only the reset term differs:

     rebuild     charges a full construction per exec (allocate + initialise
                 the arena, fill the whole shadow plane / signature table);
     persistent  charges one construction up front, then per exec a bulk
                 arena blit plus the journal-guided shadow repair
                 ([Shadow_mem.journal_segments]), the PAC table rewind
                 (signs delta) and the object-map rewind (allocator events).

   Everything is event counts through the calibrated weight table — no
   wall-clock — so the rows reproduce byte-identically and the perf gate
   pins them. [bp_ops] is the number of execs, making the exported ns/op a
   per-exec cost: execs/sec = 1e9 / ns_per_op, which is what the
   fuzzmode-gate CLI asserts the persistent/rebuild speedup on. *)
let fuzzmode_stats () =
  let module Backend = Giantsan_policy.Backend in
  let module Cost_model = Giantsan_workload.Cost_model in
  let module Difftest = Giantsan_bugs.Difftest in
  let module Scenario = Giantsan_bugs.Scenario in
  let module Pac = Giantsan_pac.Pac in
  let violations =
    [
      Difftest.V_overflow; Difftest.V_underflow; Difftest.V_far_jump;
      Difftest.V_uaf; Difftest.V_double_free; Difftest.V_mid_free;
    ]
  in
  let batch =
    List.init 24 (fun i ->
        if i mod 2 = 0 then Difftest.gen_clean ~seed:i
        else
          Difftest.gen_buggy ~seed:i
            (List.nth violations (i / 2 mod List.length violations)))
  in
  let n = List.length batch in
  (* reset-model constants, in the same abstract-ns currency as the
     calibrated weights: a fresh construction touches every byte once
     (calloc-style zeroing plus poisoning), a restore is a bulk memcpy over
     already-mapped pages — an order of magnitude cheaper per byte — and a
     metadata-entry rewind costs one allocator-bookkeeping event *)
  let w = Cost_model.default in
  let w_init = w.Cost_model.w_poison_segment in
  let w_blit = w_init /. 16.0 in
  let arena_bytes = config.Memsim.Heap.arena_size in
  List.map
    (fun id ->
      let san, plane = Backend.create_exposed id config in
      san.San.snapshot ();
      let loads0 = san.San.shadow_loads ()
      and stores0 = san.San.shadow_stores () in
      let signs0 =
        match plane with Backend.Sigs p -> Pac.signs p | _ -> 0
      in
      let exec_counters = Counters.create () in
      let ops = ref 0
      and shadow_loads = ref 0
      and shadow_stores = ref 0
      and journal_total = ref 0
      and signs_total = ref 0 in
      List.iter
        (fun sc ->
          (try ignore (Scenario.run san sc) with
          | Failure _ | Out_of_memory -> ());
          ops := !ops + List.length sc.Scenario.sc_steps;
          shadow_loads := !shadow_loads + (san.San.shadow_loads () - loads0);
          shadow_stores :=
            !shadow_stores + (san.San.shadow_stores () - stores0);
          (match plane with
          | Backend.Shadow m ->
            journal_total := !journal_total + Shadow_mem.journal_segments m
          | Backend.Sigs p ->
            signs_total := !signs_total + (Pac.signs p - signs0)
          | Backend.Plain -> ());
          Counters.add exec_counters san.San.counters;
          san.San.restore ())
        batch;
      let shadow_segs =
        match plane with Backend.Shadow m -> Shadow_mem.segments m | _ -> 0
      in
      let exec_ns =
        Cost_model.simulated_ns
          {
            Cost_model.ops = !ops;
            shadow_loads = !shadow_loads;
            counters = exec_counters;
            is_sanitized = id <> Backend.Native;
            is_lfp = id = Backend.Lfp;
            stack_fraction = 0.0;
          }
      in
      let construct_ns =
        float_of_int (arena_bytes + shadow_segs) *. w_init
      in
      let map_events =
        exec_counters.Counters.mallocs + exec_counters.Counters.frees
      in
      let restore_ns =
        (float_of_int (n * arena_bytes) *. w_blit)
        +. (float_of_int !journal_total *. w_blit)
        +. (float_of_int (!signs_total + map_events) *. w.Cost_model.w_free)
      in
      let row profile sim_ns =
        {
          Telemetry.Export.bp_profile = profile;
          bp_config = Backend.name id;
          bp_sim_ns = sim_ns;
          bp_ops = n;
          bp_shadow_loads = !shadow_loads;
          bp_shadow_stores = !shadow_stores;
          bp_region_checks = exec_counters.Counters.region_checks;
          bp_fast_checks = exec_counters.Counters.fast_checks;
          bp_slow_checks = exec_counters.Counters.slow_checks;
          bp_word_checks = exec_counters.Counters.word_checks;
        }
      in
      [
        row "fuzzmode.rebuild" ((float_of_int n *. construct_ns) +. exec_ns);
        row "fuzzmode.persistent" (construct_ns +. exec_ns +. restore_ns);
      ])
    Backend.all
  |> List.concat

(* Sustained-traffic numbers from the multi-tenant service loop under the
   virtual clock: fully deterministic (latencies are synthesized from the
   sanitizer's own event counts), so the rows are identical across machines
   and across [jobs] — they ride in the bench JSON as a "service" section
   the perf gate ignores. *)
let service_stats () =
  let module Loop = Giantsan_service.Loop in
  let module Policy = Giantsan_policy.Policy in
  let base_cfg =
    { Loop.default_config with Loop.tenants = 4; seed = 11; ticks = 64; jobs }
  in
  let plain = Loop.service_rows (Loop.run base_cfg) in
  (* the same fleet under the default policy spec: tenants start on the
     policy's backend assignment, so the rows measure the policy engine's
     steady-state cost rather than GiantSan's — prefixed so the two row
     sets stay distinguishable in the one "service" section *)
  let policied =
    let cfg = { base_cfg with Loop.policy = Some Policy.default } in
    List.map
      (fun r ->
        {
          r with
          Telemetry.Export.sv_scope =
            "policy." ^ r.Telemetry.Export.sv_scope;
        })
      (Loop.service_rows (Loop.run cfg))
  in
  plain @ policied

let () =
  print_endline "GiantSan reproduction benchmarks (Bechamel)";
  print_endline "===========================================";
  let group_rows =
    if profiles_only then []
    else
      List.map
        (fun g ->
          let name = Test.name g in
          Printf.printf "\n[%s]\n" name;
          Telemetry.Span.with_span ("bench:" ^ name) (fun () ->
              (name, run_group g)))
        groups
  in
  match telemetry_path with
  | None -> ()
  | Some path ->
    let profiles =
      Telemetry.Span.with_span "bench:profile-sweep" profile_stats
      @ Telemetry.Span.with_span "bench:fig11-sweep" fig11_stats
      @ Telemetry.Span.with_span "bench:fuzzmode-sweep" fuzzmode_stats
    in
    let service = Telemetry.Span.with_span "bench:service" service_stats in
    let body =
      Telemetry.Export.bench_json ~groups:group_rows ~profiles ~service
        ~spans:(Telemetry.Span.completed ())
        ()
    in
    Telemetry.Export.write_file path body;
    Printf.printf "\nbench telemetry written to %s\n" path
